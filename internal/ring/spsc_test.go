package ring

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

func TestSPSCBasic(t *testing.T) {
	r := NewSPSC[int](8)
	if r.Cap() != 7 {
		t.Fatalf("Cap = %d, want 7 (one slot sacrificed)", r.Cap())
	}
	if _, ok := r.Dequeue(); ok {
		t.Fatal("dequeue on empty succeeded")
	}
	for i := 0; i < 7; i++ {
		if !r.Enqueue(i) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if r.Enqueue(99) {
		t.Fatal("enqueue on full succeeded")
	}
	for i := 0; i < 7; i++ {
		v, ok := r.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d = %d,%v", i, v, ok)
		}
	}
}

func TestSPSCCapacityRounding(t *testing.T) {
	if got := NewSPSC[int](5).Cap(); got != 7 {
		t.Fatalf("cap(5) rounds to %d, want 7", got)
	}
	if got := NewSPSC[int](0).Cap(); got != 1 {
		t.Fatalf("cap(0) = %d, want 1", got)
	}
}

func TestSPSCBatch(t *testing.T) {
	r := NewSPSC[int](16)
	in := []int{1, 2, 3, 4, 5}
	if n := r.EnqueueBatch(in); n != 5 {
		t.Fatalf("EnqueueBatch = %d", n)
	}
	out := make([]int, 3)
	if n := r.DequeueBatch(out); n != 3 {
		t.Fatalf("DequeueBatch = %d", n)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestSPSCBatchPartial(t *testing.T) {
	r := NewSPSC[int](4) // usable 3
	in := []int{1, 2, 3, 4, 5}
	if n := r.EnqueueBatch(in); n != 3 {
		t.Fatalf("EnqueueBatch into cap-3 = %d, want 3", n)
	}
}

func TestSPSCConcurrent(t *testing.T) {
	// One producer, one consumer, a million items: every item must arrive
	// exactly once, in order.
	const total = 1 << 16
	r := NewSPSC[uint64](1024)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < total; {
			if r.Enqueue(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	var bad bool
	go func() {
		defer wg.Done()
		next := uint64(0)
		for next < total {
			v, ok := r.Dequeue()
			if !ok {
				runtime.Gosched()
				continue
			}
			if v != next {
				bad = true
				return
			}
			next++
		}
	}()
	wg.Wait()
	if bad {
		t.Fatal("items reordered or lost")
	}
}

func TestSPSCConcurrentBatch(t *testing.T) {
	const total = 1 << 15
	r := NewSPSC[int](512)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]int, 64)
		sent := 0
		for sent < total {
			n := 0
			for n < len(buf) && sent+n < total {
				buf[n] = sent + n
				n++
			}
			acc := r.EnqueueBatch(buf[:n])
			sent += acc
			if acc == 0 {
				runtime.Gosched()
			}
		}
	}()
	got := make([]int, 0, total)
	buf := make([]int, 64)
	for len(got) < total {
		n := r.DequeueBatch(buf)
		got = append(got, buf[:n]...)
		if n == 0 {
			runtime.Gosched()
		}
	}
	wg.Wait()
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

// TestSPSCConcurrentMixed interleaves batch and single operations at random
// on both sides concurrently: the consumer must observe 0..total-1 exactly,
// in order, regardless of how either side chunks its calls.
func TestSPSCConcurrentMixed(t *testing.T) {
	const total = 1 << 15
	r := NewSPSC[int](256)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		buf := make([]int, 33)
		sent := 0
		for sent < total {
			if rng.Intn(2) == 0 {
				k := rng.Intn(len(buf)) + 1
				if sent+k > total {
					k = total - sent
				}
				for i := 0; i < k; i++ {
					buf[i] = sent + i
				}
				n := r.EnqueueBatch(buf[:k])
				sent += n
				if n == 0 {
					runtime.Gosched()
				}
			} else if r.Enqueue(sent) {
				sent++
			} else {
				runtime.Gosched()
			}
		}
	}()
	rng := rand.New(rand.NewSource(2))
	buf := make([]int, 29)
	next := 0
	for next < total {
		if rng.Intn(2) == 0 {
			n := r.DequeueBatch(buf[:rng.Intn(len(buf))+1])
			if n == 0 {
				runtime.Gosched()
				continue
			}
			for i := 0; i < n; i++ {
				if buf[i] != next {
					t.Fatalf("got %d, want %d", buf[i], next)
				}
				next++
			}
		} else if v, ok := r.Dequeue(); ok {
			if v != next {
				t.Fatalf("got %d, want %d", v, next)
			}
			next++
		} else {
			runtime.Gosched()
		}
	}
	wg.Wait()
}

func BenchmarkSPSCPingPong(b *testing.B) {
	r := NewSPSC[int](1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		n := 0
		for n < b.N {
			if _, ok := r.Dequeue(); ok {
				n++
			} else {
				runtime.Gosched()
			}
		}
	}()
	for i := 0; i < b.N; {
		if r.Enqueue(i) {
			i++
		} else {
			runtime.Gosched()
		}
	}
	<-done
}

// BenchmarkSPSCBulkPingPong is the batch counterpart: 64-element batches, one
// atomic publish per batch instead of per element.
func BenchmarkSPSCBulkPingPong(b *testing.B) {
	const batch = 64
	r := NewSPSC[int](1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]int, batch)
		n := 0
		for n < b.N {
			got := r.DequeueBatch(buf)
			if got == 0 {
				runtime.Gosched()
				continue
			}
			n += got
		}
	}()
	buf := make([]int, batch)
	for i := 0; i < b.N; {
		want := b.N - i
		if want > batch {
			want = batch
		}
		put := r.EnqueueBatch(buf[:want])
		if put == 0 {
			runtime.Gosched()
			continue
		}
		i += put
	}
	<-done
}
