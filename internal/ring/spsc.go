package ring

import (
	"sync/atomic"
)

// SPSC is a bounded lock-free single-producer single-consumer queue, the Go
// analogue of DPDK's rte_ring in SP/SC mode. It carries interface-free
// generic items to avoid allocation on the hot path. Capacity is rounded up
// to a power of two so index wrapping is a mask.
//
// Memory ordering: head (consumer position) is written only by the consumer
// and read by the producer; tail (producer position) the reverse. Both are
// accessed with atomic Load/Store, which in Go guarantees the necessary
// happens-before edges for the slot contents.
//
// Each side additionally keeps a plain (non-atomic) mirror of its own index
// and a cached copy of the opposite index, so the fast path — enqueue with
// known slack, dequeue with known backlog — performs zero atomic loads and a
// single atomic store (the publish). The cached opposite index is refreshed
// only when it suggests the ring is full (producer) or empty (consumer),
// i.e. once per ring-capacity of traffic in steady state.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	_    Pad // keep producer and consumer state on separate cache lines
	head atomic.Uint64
	// ctail is the consumer's cached copy of tail; chead mirrors head without
	// the atomic load. Both are touched only by the consumer goroutine.
	chead, ctail uint64

	_    Pad
	tail atomic.Uint64
	// phead is the producer's cached copy of head; ptail mirrors tail.
	// Both are touched only by the producer goroutine.
	ptail, phead uint64

	_ Pad
}

// NewSPSC returns a ring with capacity rounded up to the next power of two
// (minimum 2).
func NewSPSC[T any](capacity int) *SPSC[T] {
	if capacity < 2 {
		capacity = 2
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &SPSC[T]{buf: make([]T, size), mask: uint64(size - 1)}
}

// Cap reports usable capacity (one slot is sacrificed to distinguish full
// from empty).
func (r *SPSC[T]) Cap() int { return len(r.buf) - 1 }

// Len reports an instantaneous (racy but consistent) occupancy estimate.
func (r *SPSC[T]) Len() int {
	t := r.tail.Load()
	h := r.head.Load()
	return int(t - h)
}

// Enqueue adds v; it reports false when the ring is full. Must be called
// from a single producer goroutine.
func (r *SPSC[T]) Enqueue(v T) bool {
	t := r.ptail
	if t-r.phead >= uint64(len(r.buf)-1) {
		r.phead = r.head.Load()
		if t-r.phead >= uint64(len(r.buf)-1) {
			return false
		}
	}
	r.buf[t&r.mask] = v
	r.ptail = t + 1
	r.tail.Store(t + 1)
	return true
}

// EnqueueBatch adds up to len(vs) items with a single publish and reports
// how many were accepted.
func (r *SPSC[T]) EnqueueBatch(vs []T) int {
	t := r.ptail
	space := uint64(len(r.buf)-1) - (t - r.phead)
	if space < uint64(len(vs)) {
		r.phead = r.head.Load()
		space = uint64(len(r.buf)-1) - (t - r.phead)
	}
	n := uint64(len(vs))
	if n > space {
		n = space
	}
	for i := uint64(0); i < n; i++ {
		r.buf[(t+i)&r.mask] = vs[i]
	}
	if n > 0 {
		r.ptail = t + n
		r.tail.Store(t + n)
	}
	return int(n)
}

// Dequeue removes the oldest item. Must be called from a single consumer
// goroutine.
func (r *SPSC[T]) Dequeue() (v T, ok bool) {
	h := r.chead
	if h == r.ctail {
		r.ctail = r.tail.Load()
		if h == r.ctail {
			return v, false
		}
	}
	v = r.buf[h&r.mask]
	var zero T
	r.buf[h&r.mask] = zero
	r.chead = h + 1
	r.head.Store(h + 1)
	return v, true
}

// DequeueBatch removes up to len(dst) items into dst with a single publish,
// reporting the count.
func (r *SPSC[T]) DequeueBatch(dst []T) int {
	h := r.chead
	avail := r.ctail - h
	if avail < uint64(len(dst)) {
		r.ctail = r.tail.Load()
		avail = r.ctail - h
	}
	n := avail
	if n > uint64(len(dst)) {
		n = uint64(len(dst))
	}
	var zero T
	for i := uint64(0); i < n; i++ {
		dst[i] = r.buf[(h+i)&r.mask]
		r.buf[(h+i)&r.mask] = zero
	}
	if n > 0 {
		r.chead = h + n
		r.head.Store(h + n)
	}
	return int(n)
}
