package ring

import (
	"sync/atomic"
)

// SPSC is a bounded lock-free single-producer single-consumer queue, the Go
// analogue of DPDK's rte_ring in SP/SC mode. It carries interface-free
// generic items to avoid allocation on the hot path. Capacity is rounded up
// to a power of two so index wrapping is a mask.
//
// Memory ordering: head (consumer position) is written only by the consumer
// and read by the producer; tail (producer position) the reverse. Both are
// accessed with atomic Load/Store, which in Go guarantees the necessary
// happens-before edges for the slot contents.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	_    [64]byte // keep producer and consumer indices on separate cache lines
	head atomic.Uint64
	_    [64]byte
	tail atomic.Uint64
	_    [64]byte
}

// NewSPSC returns a ring with capacity rounded up to the next power of two
// (minimum 2).
func NewSPSC[T any](capacity int) *SPSC[T] {
	if capacity < 2 {
		capacity = 2
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &SPSC[T]{buf: make([]T, size), mask: uint64(size - 1)}
}

// Cap reports usable capacity (one slot is sacrificed to distinguish full
// from empty).
func (r *SPSC[T]) Cap() int { return len(r.buf) - 1 }

// Len reports an instantaneous (racy but consistent) occupancy estimate.
func (r *SPSC[T]) Len() int {
	t := r.tail.Load()
	h := r.head.Load()
	return int(t - h)
}

// Enqueue adds v; it reports false when the ring is full. Must be called
// from a single producer goroutine.
func (r *SPSC[T]) Enqueue(v T) bool {
	t := r.tail.Load()
	h := r.head.Load()
	if t-h >= uint64(len(r.buf)-1) {
		return false
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	return true
}

// EnqueueBatch adds up to len(vs) items and reports how many were accepted.
func (r *SPSC[T]) EnqueueBatch(vs []T) int {
	t := r.tail.Load()
	h := r.head.Load()
	space := uint64(len(r.buf)-1) - (t - h)
	n := uint64(len(vs))
	if n > space {
		n = space
	}
	for i := uint64(0); i < n; i++ {
		r.buf[(t+i)&r.mask] = vs[i]
	}
	r.tail.Store(t + n)
	return int(n)
}

// Dequeue removes the oldest item. Must be called from a single consumer
// goroutine.
func (r *SPSC[T]) Dequeue() (v T, ok bool) {
	h := r.head.Load()
	t := r.tail.Load()
	if h == t {
		return v, false
	}
	v = r.buf[h&r.mask]
	var zero T
	r.buf[h&r.mask] = zero
	r.head.Store(h + 1)
	return v, true
}

// DequeueBatch removes up to len(dst) items into dst, reporting the count.
func (r *SPSC[T]) DequeueBatch(dst []T) int {
	h := r.head.Load()
	t := r.tail.Load()
	n := t - h
	if n > uint64(len(dst)) {
		n = uint64(len(dst))
	}
	var zero T
	for i := uint64(0); i < n; i++ {
		dst[i] = r.buf[(h+i)&r.mask]
		r.buf[(h+i)&r.mask] = zero
	}
	r.head.Store(h + n)
	return int(n)
}
