package ring

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestMPMCBasic(t *testing.T) {
	q := NewMPMC[int](8)
	if q.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8 (no sacrificed slot)", q.Cap())
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue on empty succeeded")
	}
	for i := 0; i < 8; i++ {
		if !q.Enqueue(i) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if q.Enqueue(99) {
		t.Fatal("enqueue on full succeeded")
	}
	if q.Len() != 8 {
		t.Fatalf("Len = %d, want 8", q.Len())
	}
	for i := 0; i < 8; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d = %d,%v", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue after drain succeeded")
	}
}

func TestMPMCBatchBasic(t *testing.T) {
	q := NewMPMC[int](8)
	if n := q.EnqueueBatch([]int{1, 2, 3, 4, 5}); n != 5 {
		t.Fatalf("EnqueueBatch = %d", n)
	}
	// Partial accept when the batch exceeds free space.
	if n := q.EnqueueBatch([]int{6, 7, 8, 9}); n != 3 {
		t.Fatalf("EnqueueBatch into 3 free = %d, want 3", n)
	}
	if n := q.EnqueueBatch([]int{99}); n != 0 {
		t.Fatalf("EnqueueBatch on full = %d, want 0", n)
	}
	dst := make([]int, 16)
	if n := q.DequeueBatch(dst); n != 8 {
		t.Fatalf("DequeueBatch = %d, want 8", n)
	}
	for i := 0; i < 8; i++ {
		if dst[i] != i+1 {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], i+1)
		}
	}
	if n := q.DequeueBatch(dst); n != 0 {
		t.Fatalf("DequeueBatch on empty = %d", n)
	}
	if n := q.EnqueueBatch(nil); n != 0 {
		t.Fatal("EnqueueBatch(nil) accepted items")
	}
}

// TestMPMCModelEquivalence drives the ring single-threaded with random
// mixes of single and batch operations against a plain-slice model,
// mirroring ring_property_test.go.
func TestMPMCModelEquivalence(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw%31) + 2
		q := NewMPMC[int](capacity)
		capacity = q.Cap() // rounded
		var model []int
		rng := rand.New(rand.NewSource(seed))
		next := 0
		scratch := make([]int, 40)
		for op := 0; op < 400; op++ {
			switch rng.Intn(4) {
			case 0: // single enqueue
				ok := q.Enqueue(next)
				if ok != (len(model) < capacity) {
					return false
				}
				if ok {
					model = append(model, next)
					next++
				}
			case 1: // batch enqueue
				k := rng.Intn(len(scratch)) + 1
				for i := 0; i < k; i++ {
					scratch[i] = next + i
				}
				n := q.EnqueueBatch(scratch[:k])
				want := capacity - len(model)
				if want > k {
					want = k
				}
				if n != want {
					return false
				}
				model = append(model, scratch[:n]...)
				next += n
			case 2: // single dequeue
				v, ok := q.Dequeue()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			default: // batch dequeue
				k := rng.Intn(len(scratch)) + 1
				n := q.DequeueBatch(scratch[:k])
				want := len(model)
				if want > k {
					want = k
				}
				if n != want {
					return false
				}
				for i := 0; i < n; i++ {
					if scratch[i] != model[i] {
						return false
					}
				}
				model = model[n:]
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMPMCConcurrentConservation: several producers each pushing a tagged
// sequence with random batch/single mixes, several consumers draining with
// random batch/single mixes. Every item must arrive exactly once and each
// producer's items must arrive in that producer's order (per-producer FIFO).
func TestMPMCConcurrentConservation(t *testing.T) {
	const (
		producers = 3
		consumers = 2
		perProd   = 1 << 13
	)
	q := NewMPMC[uint64](256)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p) + 1))
			buf := make([]uint64, 17)
			sent := 0
			for sent < perProd {
				if rng.Intn(2) == 0 {
					k := rng.Intn(len(buf)) + 1
					if sent+k > perProd {
						k = perProd - sent
					}
					for i := 0; i < k; i++ {
						buf[i] = uint64(p)<<32 | uint64(sent+i)
					}
					n := q.EnqueueBatch(buf[:k])
					sent += n
					if n == 0 {
						runtime.Gosched()
					}
				} else if q.Enqueue(uint64(p)<<32 | uint64(sent)) {
					sent++
				} else {
					runtime.Gosched()
				}
			}
		}(p)
	}
	// Ordering across racing consumers is unobservable; conservation (each
	// item exactly once) is the invariant here. Per-producer FIFO is pinned
	// by TestMPMCSingleConsumerFIFO below.
	var mu sync.Mutex
	got := make(map[uint64]int)
	var received atomic.Int64
	record := func(vs []uint64) {
		mu.Lock()
		for _, v := range vs {
			got[v]++
		}
		mu.Unlock()
		received.Add(int64(len(vs)))
	}
	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func(c int) {
			defer cg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 100))
			buf := make([]uint64, 23)
			for received.Load() < producers*perProd {
				if rng.Intn(2) == 0 {
					n := q.DequeueBatch(buf)
					if n == 0 {
						runtime.Gosched()
						continue
					}
					record(buf[:n])
				} else if v, ok := q.Dequeue(); ok {
					record([]uint64{v})
				} else {
					runtime.Gosched()
				}
			}
		}(c)
	}
	wg.Wait()
	cg.Wait()
	if len(got) != producers*perProd {
		t.Fatalf("received %d distinct items, want %d", len(got), producers*perProd)
	}
	for v, n := range got {
		if n != 1 {
			t.Fatalf("item %x received %d times", v, n)
		}
	}
}

// TestMPMCSingleConsumerFIFO pins the dataplane's rx-ring contract: with
// multiple producers and ONE consumer, each producer's items arrive in that
// producer's send order.
func TestMPMCSingleConsumerFIFO(t *testing.T) {
	const producers = 4
	const perProd = 1 << 13
	q := NewMPMC[uint64](128)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			buf := make([]uint64, 9)
			sent := 0
			for sent < perProd {
				k := len(buf)
				if sent+k > perProd {
					k = perProd - sent
				}
				for i := 0; i < k; i++ {
					buf[i] = uint64(p)<<32 | uint64(sent+i)
				}
				n := q.EnqueueBatch(buf[:k])
				sent += n
				if n == 0 {
					runtime.Gosched()
				}
			}
		}(p)
	}
	next := [producers]uint64{}
	buf := make([]uint64, 32)
	total := 0
	for total < producers*perProd {
		n := q.DequeueBatch(buf)
		if n == 0 {
			runtime.Gosched()
			continue
		}
		for _, v := range buf[:n] {
			p, seq := int(v>>32), v&0xffffffff
			if seq != next[p] {
				t.Fatalf("producer %d: got seq %d, want %d", p, seq, next[p])
			}
			next[p]++
		}
		total += n
	}
	wg.Wait()
}

func BenchmarkMPMCBulkEnqueueDequeue(b *testing.B) {
	q := NewMPMC[int](1024)
	in := make([]int, 64)
	out := make([]int, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.EnqueueBatch(in)
		q.DequeueBatch(out)
	}
}

func BenchmarkMPMCSingleEnqueueDequeue(b *testing.B) {
	q := NewMPMC[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(i)
		q.Dequeue()
	}
}
