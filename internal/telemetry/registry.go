// Package telemetry is the unified observability layer shared by the
// discrete-event simulator and the live goroutine dataplane: a registry of
// named counters, gauges and log-bucket histograms; Prometheus text and JSON
// exposition (prometheus.go, http.go); a bounded time-series recorder
// (recorder.go); and a structured, levelled, drop-counting event log
// (eventlog.go).
//
// Instrument kinds:
//
//   - Owned instruments (Counter, Gauge, Histogram) are atomic and safe for
//     concurrent producers racing a scraping reader — the live dataplane
//     writes these from its worker goroutines while /metrics is served.
//   - Func instruments (CounterFunc, GaugeFunc, HistogramFunc) read a value
//     from a closure at gather time. The simulator registers these over its
//     existing meters; it is single-threaded, so gathering is safe whenever
//     the simulation is not being advanced (the recorder samples from inside
//     the event loop, and cmd/nfvsim serves /metrics after the run).
package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"

	"nfvnice/internal/stats"
)

// MetricType distinguishes exposition behaviour.
type MetricType uint8

// Metric types.
const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Label is one name=value pair attached to a series. Label order is
// preserved as given at registration.
type Label struct {
	Key, Value string
}

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing count. Safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value that may go up or down. Safe for
// concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reports the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts samples in the same logarithmic (power-of-two) buckets as
// stats.Histogram, but with atomic counters so concurrent producers can race
// a scraping reader. Bucket k holds values of bit length k, i.e. the range
// [2^(k-1), 2^k); its Prometheus upper bound is 2^k - 1 inclusive.
type Histogram struct {
	buckets [64]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe adds a sample.
func (h *Histogram) Observe(v uint64) { h.ObserveN(v, 1) }

// ObserveN adds n equal samples with the same three atomic updates a single
// Observe costs. Batch producers (the dataplane's mover observes coarse-clock
// latencies, which arrive in runs of identical values) use it to amortize
// counter traffic: add-N instead of N adds.
func (h *Histogram) ObserveN(v uint64, n uint64) {
	if n == 0 {
		return
	}
	idx := stats.BucketOf(v)
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx].Add(n)
	h.count.Add(n)
	h.sum.Add(v * n)
}

// Count reports total samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot captures the histogram state. The snapshot is internally
// consistent enough for exposition: buckets are read after count/sum, so
// cumulative bucket totals never exceed the reported count by more than the
// in-flight observations.
func (h *Histogram) Snapshot() stats.HistogramSnapshot {
	var s stats.HistogramSnapshot
	s.Sum = h.sum.Load()
	s.Count = h.count.Load()
	var seen uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if seen+c > s.Count {
			c = s.Count - seen
		}
		s.Buckets[i] = c
		seen += c
	}
	return s
}

// Series is one labelled stream within a family, as gathered.
type Series struct {
	Labels []Label
	// Value holds the current counter or gauge value.
	Value float64
	// Hist holds histogram state (nil for counters and gauges).
	Hist *stats.HistogramSnapshot
}

// Family is all series sharing one metric name.
type Family struct {
	Name   string
	Help   string
	Type   MetricType
	Series []Series
}

// Gatherer is anything that can produce a metrics snapshot: a live Registry
// or a Published cache.
type Gatherer interface {
	Gather() []Family
}

// series is the registered (live) form.
type series struct {
	labels    []Label
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() uint64
	gaugeFn   func() float64
	histFn    func() stats.HistogramSnapshot
}

type family struct {
	name   string
	help   string
	typ    MetricType
	series []*series
}

// Registry holds metric families in registration order.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*family
	order []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*family)}
}

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

func labelKey(labels []Label) string {
	ls := make([]string, len(labels))
	for i, l := range labels {
		ls[i] = l.Key + "\x00" + l.Value
	}
	sort.Strings(ls)
	out := ""
	for _, s := range ls {
		out += s + "\x01"
	}
	return out
}

func (r *Registry) register(name, help string, typ MetricType, labels []Label, s *series) {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameRE.MatchString(l.Key) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", l.Key))
		}
	}
	s.labels = labels
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byKey[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.byKey[name] = f
		r.order = append(r.order, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: %s registered as %s and %s", name, f.typ, typ))
	}
	key := labelKey(labels)
	for _, existing := range f.series {
		if labelKey(existing.labels) == key {
			panic(fmt.Sprintf("telemetry: duplicate series %s%v", name, labels))
		}
	}
	f.series = append(f.series, s)
}

// Counter registers and returns an owned counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, TypeCounter, labels, &series{counter: c})
	return c
}

// Gauge registers and returns an owned gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, TypeGauge, labels, &series{gauge: g})
	return g
}

// Histogram registers and returns an owned log-bucket histogram.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	h := &Histogram{}
	r.register(name, help, TypeHistogram, labels, &series{hist: h})
	return h
}

// CounterFunc registers a counter whose value is read from fn at gather
// time. fn must be monotonic for the exposition to be honest, and must be
// safe to call whenever the registry is gathered.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(name, help, TypeCounter, labels, &series{counterFn: fn})
}

// GaugeFunc registers a gauge whose value is read from fn at gather time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, TypeGauge, labels, &series{gaugeFn: fn})
}

// HistogramFunc registers a histogram gathered by snapshotting fn — the
// bridge from the simulator's stats.Histogram instances.
func (r *Registry) HistogramFunc(name, help string, fn func() stats.HistogramSnapshot, labels ...Label) {
	r.register(name, help, TypeHistogram, labels, &series{histFn: fn})
}

// Gather snapshots every family in registration order.
func (r *Registry) Gather() []Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Family, 0, len(r.order))
	for _, f := range r.order {
		gf := Family{Name: f.name, Help: f.help, Type: f.typ}
		for _, s := range f.series {
			gs := Series{Labels: s.labels}
			switch {
			case s.counter != nil:
				gs.Value = float64(s.counter.Value())
			case s.counterFn != nil:
				gs.Value = float64(s.counterFn())
			case s.gauge != nil:
				gs.Value = s.gauge.Value()
			case s.gaugeFn != nil:
				gs.Value = s.gaugeFn()
			case s.hist != nil:
				snap := s.hist.Snapshot()
				gs.Hist = &snap
			case s.histFn != nil:
				snap := s.histFn()
				gs.Hist = &snap
			}
			gf.Series = append(gf.Series, gs)
		}
		out = append(out, gf)
	}
	return out
}

// Published is an atomically swapped metrics snapshot: a producer calls
// Update with a fresh Gather result and readers (the HTTP handlers) serve it
// without touching the live registry. This is how a running simulation can
// expose metrics race-free: the event loop publishes, the server reads.
type Published struct {
	p atomic.Pointer[[]Family]
}

// Update replaces the published snapshot.
func (p *Published) Update(fams []Family) { p.p.Store(&fams) }

// Gather returns the latest published snapshot (empty before any Update).
func (p *Published) Gather() []Family {
	if f := p.p.Load(); f != nil {
		return *f
	}
	return nil
}
