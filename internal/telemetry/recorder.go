package telemetry

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"io"
	"math"
	"strconv"
	"sync"
	"time"
)

// Recorder samples a Gatherer on a fixed period into a bounded ring of
// rows, one column per flattened series ("name{k=\"v\"}"; histograms
// contribute _count and _sum columns). When the ring fills, the oldest rows
// are overwritten and Overwritten() counts the loss, so an unbounded run
// keeps a bounded, most-recent time series. Export with WriteCSV or
// WriteJSON.
//
// The simulator drives Sample from inside its event loop on simulated time
// (Platform telemetry wiring); live runs call Run on a goroutine to sample
// wall clock.
type Recorder struct {
	mu    sync.Mutex
	g     Gatherer
	cols  []string
	colOf map[string]int

	times []float64
	rows  [][]float64
	head  int // index of oldest row
	n     int

	overwritten uint64
}

// DefaultRecorderCap bounds the ring when NewRecorder is given 0.
const DefaultRecorderCap = 4096

// NewRecorder returns a recorder over g retaining up to capacity samples
// (0 means DefaultRecorderCap).
func NewRecorder(g Gatherer, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCap
	}
	return &Recorder{
		g:     g,
		colOf: make(map[string]int),
		times: make([]float64, capacity),
		rows:  make([][]float64, capacity),
	}
}

func (r *Recorder) col(key string) int {
	i, ok := r.colOf[key]
	if !ok {
		i = len(r.cols)
		r.cols = append(r.cols, key)
		r.colOf[key] = i
	}
	return i
}

// Sample gathers one row at time t (seconds). Columns discovered after the
// first sample extend the schema; earlier rows export empty cells for them.
func (r *Recorder) Sample(t float64) {
	fams := r.g.Gather()
	r.mu.Lock()
	defer r.mu.Unlock()
	row := make([]float64, len(r.cols), len(r.cols)+8)
	for i := range row {
		row[i] = math.NaN() // series may have been gathered conditionally
	}
	set := func(key string, v float64) {
		i := r.col(key)
		for len(row) <= i {
			row = append(row, math.NaN())
		}
		row[i] = v
	}
	for _, f := range fams {
		for _, s := range f.Series {
			base := f.Name + renderLabels(s.Labels, "", "")
			if s.Hist != nil {
				set(f.Name+"_count"+renderLabels(s.Labels, "", ""), float64(s.Hist.Count))
				set(f.Name+"_sum"+renderLabels(s.Labels, "", ""), float64(s.Hist.Sum))
				continue
			}
			set(base, s.Value)
		}
	}
	if r.n == len(r.rows) {
		r.times[r.head] = t
		r.rows[r.head] = row
		r.head = (r.head + 1) % len(r.rows)
		r.overwritten++
	} else {
		i := (r.head + r.n) % len(r.rows)
		r.times[i] = t
		r.rows[i] = row
		r.n++
	}
}

// Run samples every period until ctx is canceled, stamping rows with seconds
// since Run started. It blocks; run it on its own goroutine.
func (r *Recorder) Run(ctx context.Context, period time.Duration) {
	start := time.Now()
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-tick.C:
			r.Sample(now.Sub(start).Seconds())
		}
	}
}

// Len reports retained samples.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Overwritten reports samples lost to ring wraparound.
func (r *Recorder) Overwritten() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.overwritten
}

// snapshot copies rows oldest-first under the lock.
func (r *Recorder) snapshot() (cols []string, times []float64, rows [][]float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cols = append([]string(nil), r.cols...)
	times = make([]float64, r.n)
	rows = make([][]float64, r.n)
	for i := 0; i < r.n; i++ {
		j := (r.head + i) % len(r.rows)
		times[i] = r.times[j]
		rows[i] = r.rows[j]
	}
	return cols, times, rows
}

func formatCell(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteCSV renders the retained series: a "time" column then one column per
// flattened metric (column keys contain commas inside label braces, so the
// writer quotes them). Cells a row never sampled are empty.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cols, times, rows := r.snapshot()
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"time"}, cols...)); err != nil {
		return err
	}
	rec := make([]string, len(cols)+1)
	for i, row := range rows {
		rec[0] = strconv.FormatFloat(times[i], 'g', -1, 64)
		for j := range cols {
			if j < len(row) {
				rec[j+1] = formatCell(row[j])
			} else {
				rec[j+1] = ""
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON renders the retained series as {columns, samples:[{t, values}]}.
func (r *Recorder) WriteJSON(w io.Writer) error {
	cols, times, rows := r.snapshot()
	type sample struct {
		T      float64    `json:"t"`
		Values []*float64 `json:"values"`
	}
	out := struct {
		Columns     []string `json:"columns"`
		Overwritten uint64   `json:"overwritten"`
		Samples     []sample `json:"samples"`
	}{Columns: cols, Overwritten: r.Overwritten()}
	for i, row := range rows {
		vs := make([]*float64, len(cols))
		for j := range cols {
			if j < len(row) && !math.IsNaN(row[j]) {
				v := row[j]
				vs[j] = &v
			}
		}
		out.Samples = append(out.Samples, sample{T: times[i], Values: vs})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Column returns the recorded (time, value) points of one column key, for
// assertions and plotting. ok is false for unknown columns.
func (r *Recorder) Column(key string) (times, values []float64, ok bool) {
	cols, ts, rows := r.snapshot()
	idx := -1
	for i, c := range cols {
		if c == key {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, nil, false
	}
	for i, row := range rows {
		if idx < len(row) && !math.IsNaN(row[idx]) {
			times = append(times, ts[i])
			values = append(values, row[idx])
		}
	}
	return times, values, true
}

// Columns lists the discovered column keys in first-appearance order.
func (r *Recorder) Columns() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.cols...)
}
