package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"nfvnice/internal/stats"
)

// WritePrometheus renders the gatherer's families in the Prometheus text
// exposition format (version 0.0.4): one # HELP and # TYPE line per family,
// then one sample line per series. Histograms emit cumulative _bucket series
// with power-of-two "le" bounds, plus _sum and _count.
func WritePrometheus(w io.Writer, g Gatherer) error {
	bw := bufio.NewWriter(w)
	for _, f := range g.Gather() {
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Series {
			if f.Type == TypeHistogram && s.Hist != nil {
				writeHistogram(bw, f.Name, s.Labels, s.Hist)
				continue
			}
			fmt.Fprintf(bw, "%s%s %s\n", f.Name, renderLabels(s.Labels, "", ""), formatValue(s.Value))
		}
	}
	return bw.Flush()
}

func writeHistogram(w io.Writer, name string, labels []Label, h *stats.HistogramSnapshot) {
	var cum uint64
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		cum += c
		le := strconv.FormatUint(stats.BucketUpper(i), 10)
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(labels, "le", le), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(labels, "le", "+Inf"), h.Count)
	fmt.Fprintf(w, "%s_sum%s %d\n", name, renderLabels(labels, "", ""), h.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(labels, "", ""), h.Count)
}

// renderLabels formats {k="v",...}; extraKey/extraVal append one more pair
// (the histogram "le" bound). Empty label sets render as nothing.
func renderLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatFloat(v, 'f', -1, 64)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// jsonSeries is the /snapshot wire form of one series.
type jsonSeries struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  *float64          `json:"value,omitempty"`
	Hist   *jsonHist         `json:"histogram,omitempty"`
}

type jsonHist struct {
	Count   uint64      `json:"count"`
	Sum     uint64      `json:"sum"`
	Buckets [][2]uint64 `json:"buckets"` // [upper bound, count] pairs
}

type jsonFamily struct {
	Name   string       `json:"name"`
	Help   string       `json:"help,omitempty"`
	Type   string       `json:"type"`
	Series []jsonSeries `json:"series"`
}

// WriteJSON renders the gatherer's families as a JSON document (the
// /snapshot endpoint).
func WriteJSON(w io.Writer, g Gatherer) error {
	fams := g.Gather()
	out := make([]jsonFamily, 0, len(fams))
	for _, f := range fams {
		jf := jsonFamily{Name: f.Name, Help: f.Help, Type: f.Type.String()}
		for _, s := range f.Series {
			js := jsonSeries{}
			if len(s.Labels) > 0 {
				js.Labels = make(map[string]string, len(s.Labels))
				for _, l := range s.Labels {
					js.Labels[l.Key] = l.Value
				}
			}
			if s.Hist != nil {
				jh := &jsonHist{Count: s.Hist.Count, Sum: s.Hist.Sum}
				for i, c := range s.Hist.Buckets {
					if c != 0 {
						jh.Buckets = append(jh.Buckets, [2]uint64{stats.BucketUpper(i), c})
					}
				}
				js.Hist = jh
			} else {
				v := s.Value
				js.Value = &v
			}
			jf.Series = append(jf.Series, js)
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ParseText is a minimal Prometheus text-format parser used by tests and
// tooling to validate exposition output. It returns sample values keyed by
// "name{k=\"v\",...}" exactly as rendered, and an error on any line that is
// neither a comment nor a well-formed sample.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("line %d: no value separator: %q", lineNo, line)
		}
		key, val := line[:sp], line[sp+1:]
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				return nil, fmt.Errorf("line %d: unterminated labels: %q", lineNo, line)
			}
			name = key[:i]
		}
		if !nameRE.MatchString(name) {
			return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			if val == "+Inf" || val == "-Inf" || val == "NaN" {
				v = math.NaN()
			} else {
				return nil, fmt.Errorf("line %d: bad value %q: %v", lineNo, val, err)
			}
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate sample %q", lineNo, key)
		}
		out[key] = v
	}
	return out, sc.Err()
}
