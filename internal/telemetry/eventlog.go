package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// Level grades event severity.
type Level uint8

// Levels.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "?"
	}
}

// MarshalJSON renders the level name.
func (l Level) MarshalJSON() ([]byte, error) { return json.Marshal(l.String()) }

// Field is one key/value attribute of an event.
type Field struct {
	Key   string
	Value any
}

// F builds a field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Event is one structured log entry: a control-plane decision such as a
// backpressure HIGH/LOW transition, a cgroup weight update, an ECN mark, or
// a chain-entry throttle drop.
type Event struct {
	// Time is seconds since the run began (simulated or wall clock,
	// depending on the producer).
	Time   float64
	Level  Level
	Type   string
	Fields []Field
}

// MarshalJSON flattens fields into the event object.
func (e Event) MarshalJSON() ([]byte, error) {
	m := make(map[string]any, len(e.Fields)+3)
	m["t"] = e.Time
	m["level"] = e.Level.String()
	m["type"] = e.Type
	for _, f := range e.Fields {
		m[f.Key] = f.Value
	}
	return json.Marshal(m)
}

// EventLog is a bounded, levelled, drop-counting ring of Events. Emissions
// below MinLevel are filtered; once the ring is full the oldest event is
// overwritten and the drop counter increments, so a long run keeps its most
// recent history and an honest account of what it lost. Safe for concurrent
// use.
type EventLog struct {
	mu      sync.Mutex
	buf     []Event
	head    int // index of oldest
	n       int
	total   uint64
	dropped uint64
	sinks   []func(Event)

	// MinLevel filters emissions below it (set before concurrent use).
	MinLevel Level
}

// DefaultEventCap bounds the ring when NewEventLog is given 0.
const DefaultEventCap = 8192

// NewEventLog returns a ring holding up to capacity events (0 means
// DefaultEventCap).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	return &EventLog{buf: make([]Event, capacity)}
}

// AddSink registers fn to observe every accepted event synchronously at emit
// time — the bridge that lets the same instrumentation point feed the trace
// (internal/obs) alongside the log. Sinks see events even when the ring
// later overwrites them.
func (l *EventLog) AddSink(fn func(Event)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sinks = append(l.sinks, fn)
}

// Emit records an event.
func (l *EventLog) Emit(t float64, lvl Level, typ string, fields ...Field) {
	if lvl < l.MinLevel {
		return
	}
	e := Event{Time: t, Level: lvl, Type: typ, Fields: fields}
	l.mu.Lock()
	l.total++
	if l.n == len(l.buf) {
		l.buf[l.head] = e
		l.head = (l.head + 1) % len(l.buf)
		l.dropped++
	} else {
		l.buf[(l.head+l.n)%len(l.buf)] = e
		l.n++
	}
	sinks := l.sinks
	l.mu.Unlock()
	for _, fn := range sinks {
		fn(e)
	}
}

// Len reports retained events.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Total reports all accepted emissions, including those since overwritten.
func (l *EventLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Dropped reports events overwritten by ring wraparound.
func (l *EventLog) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Events returns retained events oldest-first.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, l.n)
	for i := 0; i < l.n; i++ {
		out[i] = l.buf[(l.head+i)%len(l.buf)]
	}
	return out
}

// WriteJSON renders the retained events as a JSON array (the /events
// endpoint and the -events file of cmd/nfvsim).
func (l *EventLog) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		Dropped uint64  `json:"dropped"`
		Total   uint64  `json:"total"`
		Events  []Event `json:"events"`
	}{Dropped: l.Dropped(), Total: l.Total(), Events: l.Events()})
}
