package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestEventLogRingAndDropCount(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Emit(float64(i), LevelInfo, "tick", F("i", i))
	}
	if l.Len() != 4 {
		t.Errorf("Len = %d, want 4", l.Len())
	}
	if l.Total() != 10 {
		t.Errorf("Total = %d, want 10", l.Total())
	}
	if l.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", l.Dropped())
	}
	evs := l.Events()
	for i, e := range evs {
		if want := float64(6 + i); e.Time != want {
			t.Errorf("event %d time = %v, want %v (oldest-first, most recent retained)", i, e.Time, want)
		}
	}
}

func TestEventLogMinLevel(t *testing.T) {
	l := NewEventLog(8)
	l.MinLevel = LevelInfo
	l.Emit(0, LevelDebug, "noise")
	l.Emit(1, LevelInfo, "signal")
	l.Emit(2, LevelWarn, "alarm")
	if l.Len() != 2 || l.Total() != 2 {
		t.Errorf("filtered log: len=%d total=%d, want 2/2", l.Len(), l.Total())
	}
}

func TestEventLogSinkSeesOverwrittenEvents(t *testing.T) {
	l := NewEventLog(2)
	var seen []string
	l.AddSink(func(e Event) { seen = append(seen, e.Type) })
	for _, typ := range []string{"a", "b", "c", "d"} {
		l.Emit(0, LevelInfo, typ)
	}
	if len(seen) != 4 {
		t.Errorf("sink saw %d events, want 4 (including overwritten)", len(seen))
	}
}

func TestEventLogWriteJSON(t *testing.T) {
	l := NewEventLog(4)
	l.Emit(0.5, LevelInfo, "backpressure", F("nf", "fw"), F("state", "throttle"))
	var sb strings.Builder
	if err := l.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Dropped uint64           `json:"dropped"`
		Total   uint64           `json:"total"`
		Events  []map[string]any `json:"events"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("event JSON invalid: %v\n%s", err, sb.String())
	}
	if doc.Total != 1 || len(doc.Events) != 1 {
		t.Fatalf("unexpected doc: %+v", doc)
	}
	e := doc.Events[0]
	if e["t"] != 0.5 || e["level"] != "info" || e["type"] != "backpressure" ||
		e["nf"] != "fw" || e["state"] != "throttle" {
		t.Errorf("flattened event = %v", e)
	}
}
