package telemetry

import (
	"io"
	"strings"
	"sync"
	"testing"

	"nfvnice/internal/stats"
)

func findFamily(t *testing.T, fams []Family, name string) Family {
	t.Helper()
	for _, f := range fams {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("family %q not gathered", name)
	return Family{}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests.", L("nf", "fw"))
	g := r.Gauge("queue_depth", "Depth.")
	h := r.Histogram("latency_cycles", "Latency.")

	c.Inc()
	c.Add(4)
	g.Set(7.5)
	h.Observe(1)
	h.Observe(5)
	h.Observe(5)
	h.Observe(1000)

	fams := r.Gather()
	if got := findFamily(t, fams, "requests_total"); got.Type != TypeCounter || got.Series[0].Value != 5 {
		t.Errorf("counter: got type %v value %v", got.Type, got.Series[0].Value)
	}
	if got := findFamily(t, fams, "queue_depth"); got.Type != TypeGauge || got.Series[0].Value != 7.5 {
		t.Errorf("gauge: got type %v value %v", got.Type, got.Series[0].Value)
	}
	hist := findFamily(t, fams, "latency_cycles")
	if hist.Type != TypeHistogram || hist.Series[0].Hist == nil {
		t.Fatalf("histogram: got type %v hist %v", hist.Type, hist.Series[0].Hist)
	}
	snap := hist.Series[0].Hist
	if snap.Count != 4 || snap.Sum != 1011 {
		t.Errorf("histogram snapshot: count=%d sum=%d, want 4/1011", snap.Count, snap.Sum)
	}
	var total uint64
	for _, b := range snap.Buckets {
		total += b
	}
	if total != snap.Count {
		t.Errorf("bucket totals %d != count %d", total, snap.Count)
	}
}

func TestFuncInstruments(t *testing.T) {
	r := NewRegistry()
	n := uint64(0)
	r.CounterFunc("proc_total", "", func() uint64 { return n })
	r.GaugeFunc("depth", "", func() float64 { return float64(n) / 2 })
	var sh stats.Histogram
	r.HistogramFunc("svc_cycles", "", sh.Snapshot)

	n = 10
	sh.Observe(3)
	fams := r.Gather()
	if v := findFamily(t, fams, "proc_total").Series[0].Value; v != 10 {
		t.Errorf("counterFunc = %v, want 10", v)
	}
	if v := findFamily(t, fams, "depth").Series[0].Value; v != 5 {
		t.Errorf("gaugeFunc = %v, want 5", v)
	}
	if c := findFamily(t, fams, "svc_cycles").Series[0].Hist.Count; c != 1 {
		t.Errorf("histogramFunc count = %d, want 1", c)
	}
}

func TestGatherPreservesRegistrationOrder(t *testing.T) {
	r := NewRegistry()
	names := []string{"zz_total", "aa_total", "mm_total"}
	for _, n := range names {
		r.Counter(n, "")
	}
	fams := r.Gather()
	for i, f := range fams {
		if f.Name != names[i] {
			t.Fatalf("gather order %v, want %v", fams, names)
		}
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestRegistrationValidation(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "", L("nf", "a"))

	mustPanic(t, "duplicate series", func() { r.Counter("ok_total", "", L("nf", "a")) })
	mustPanic(t, "type mismatch", func() { r.Gauge("ok_total", "") })
	mustPanic(t, "bad metric name", func() { r.Counter("bad name", "") })
	mustPanic(t, "bad label name", func() { r.Counter("ok2_total", "", L("bad key", "v")) })

	// Same name, different labels is fine.
	r.Counter("ok_total", "", L("nf", "b"))
	if got := len(findFamily(t, r.Gather(), "ok_total").Series); got != 2 {
		t.Errorf("series count = %d, want 2", got)
	}
}

func TestPublished(t *testing.T) {
	var p Published
	if got := p.Gather(); got != nil {
		t.Errorf("empty Published gathered %v", got)
	}
	r := NewRegistry()
	r.Counter("x_total", "").Add(3)
	p.Update(r.Gather())
	if v := findFamily(t, p.Gather(), "x_total").Series[0].Value; v != 3 {
		t.Errorf("published value = %v, want 3", v)
	}
}

// TestConcurrentProducersAndScraper races owned-instrument writers against a
// reader driving the full exposition path; run with -race.
func TestConcurrentProducersAndScraper(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "")
	g := r.Gauge("depth", "")
	h := r.Histogram("lat", "")
	log := NewEventLog(64)

	const producers = 4
	const perProducer = 2000
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perProducer; j++ {
				c.Inc()
				g.Set(float64(j))
				h.Observe(uint64(j%1000 + 1))
				if j%100 == 0 {
					log.Emit(float64(j), LevelInfo, "tick", F("p", id))
				}
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := WritePrometheus(io.Discard, r); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			log.WriteJSON(io.Discard)
		}
	}()
	wg.Wait()
	<-done

	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatalf("final WritePrometheus: %v", err)
	}
	vals, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("final exposition does not parse: %v", err)
	}
	if got := vals["ops_total"]; got != producers*perProducer {
		t.Errorf("ops_total = %v, want %d", got, producers*perProducer)
	}
	if got := vals["lat_count"]; got != producers*perProducer {
		t.Errorf("lat_count = %v, want %d", got, producers*perProducer)
	}
}
