package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("nf_processed_total", "Packets processed.", L("nf", "fw"), L("id", "0")).Add(42)
	r.Gauge("nf_queue_depth", "Ring occupancy.", L("nf", "fw")).Set(17)
	h := r.Histogram("latency_cycles", "End-to-end latency.")
	h.Observe(1)   // bucket le=1
	h.Observe(2)   // bucket le=3
	h.Observe(3)   // bucket le=3
	h.Observe(900) // bucket le=1023

	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP nf_processed_total Packets processed.\n",
		"# TYPE nf_processed_total counter\n",
		`nf_processed_total{nf="fw",id="0"} 42` + "\n",
		"# TYPE nf_queue_depth gauge\n",
		`nf_queue_depth{nf="fw"} 17` + "\n",
		"# TYPE latency_cycles histogram\n",
		`latency_cycles_bucket{le="1"} 1` + "\n",
		`latency_cycles_bucket{le="3"} 3` + "\n",
		`latency_cycles_bucket{le="1023"} 4` + "\n",
		`latency_cycles_bucket{le="+Inf"} 4` + "\n",
		"latency_cycles_sum 906\n",
		"latency_cycles_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}

	vals, err := ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	if vals[`nf_processed_total{nf="fw",id="0"}`] != 42 {
		t.Errorf("parsed counter = %v", vals[`nf_processed_total{nf="fw",id="0"}`])
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "help with \\ backslash\nand newline", L("k", "va\"l\\ue\n")).Set(1)
	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# HELP g help with \\ backslash\nand newline`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `g{k="va\"l\\ue\n"} 1`) {
		t.Errorf("label not escaped:\n%s", out)
	}
	if _, err := ParseText(strings.NewReader(out)); err != nil {
		t.Errorf("escaped output does not parse: %v", err)
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"novalue\n",
		"1bad_name 3\n",
		"x{unterminated 3\n",
		"x 3\nx 4\n", // duplicate sample
		"x notanumber\n",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q): expected error", bad)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", L("a", "b")).Add(5)
	r.Histogram("h", "").Observe(10)

	var sb strings.Builder
	if err := WriteJSON(&sb, r); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var fams []struct {
		Name   string `json:"name"`
		Type   string `json:"type"`
		Series []struct {
			Labels map[string]string `json:"labels"`
			Value  *float64          `json:"value"`
			Hist   *struct {
				Count   uint64      `json:"count"`
				Sum     uint64      `json:"sum"`
				Buckets [][2]uint64 `json:"buckets"`
			} `json:"histogram"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &fams); err != nil {
		t.Fatalf("snapshot JSON invalid: %v\n%s", err, sb.String())
	}
	if len(fams) != 2 || fams[0].Name != "c_total" || *fams[0].Series[0].Value != 5 {
		t.Errorf("unexpected families: %+v", fams)
	}
	hist := fams[1].Series[0].Hist
	if hist == nil || hist.Count != 1 || hist.Sum != 10 || len(hist.Buckets) != 1 {
		t.Errorf("unexpected histogram: %+v", hist)
	}
	// 10 has bit length 4 -> upper bound 2^4-1 = 15.
	if hist != nil && len(hist.Buckets) == 1 && hist.Buckets[0] != [2]uint64{15, 1} {
		t.Errorf("bucket = %v, want [15 1]", hist.Buckets[0])
	}
}
