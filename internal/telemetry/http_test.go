package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "").Add(2)
	log := NewEventLog(8)
	log.Emit(0, LevelInfo, "start")

	srv := httptest.NewServer(NewMux(r, log))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type = %q", ct)
	}
	vals, err := ParseText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics not parseable: %v", err)
	}
	if vals["hits_total"] != 2 {
		t.Errorf("hits_total = %v, want 2", vals["hits_total"])
	}

	if body, ct := get("/snapshot"); ct != "application/json" || !strings.Contains(body, "hits_total") {
		t.Errorf("/snapshot: ct=%q body=%q", ct, body)
	}
	if body, _ := get("/events"); !strings.Contains(body, `"type":"start"`) {
		t.Errorf("/events body = %q", body)
	}
	if body, _ := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index unexpected: %.80q", body)
	}
}

func TestStartServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "").Inc()
	srv, err := StartServer("127.0.0.1:0", r, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatalf("GET bound server: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "up_total 1") {
		t.Errorf("served metrics = %q", body)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	var comps []ComponentHealth
	mux := NewMux(NewRegistry(), nil)
	AddHealthz(mux, func() []ComponentHealth { return comps })
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func() (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("content type = %q", ct)
		}
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// No components registered: vacuously healthy.
	if code, body := get(); code != http.StatusOK || !strings.Contains(body, `"healthy":true`) {
		t.Errorf("empty healthz: code=%d body=%q", code, body)
	}

	comps = []ComponentHealth{
		{Component: "fw", State: "healthy", Healthy: true, Restarts: 2},
		{Component: "dpi", State: "healthy", Healthy: true},
	}
	code, body := get()
	if code != http.StatusOK {
		t.Errorf("all healthy: code = %d, want 200", code)
	}
	for _, want := range []string{`"healthy":true`, `"component":"fw"`, `"restarts":2`, `"component":"dpi"`} {
		if !strings.Contains(body, want) {
			t.Errorf("healthz body missing %s: %q", want, body)
		}
	}

	comps[1] = ComponentHealth{Component: "dpi", State: "failed", Failures: 9}
	code, body = get()
	if code != http.StatusServiceUnavailable {
		t.Errorf("degraded: code = %d, want 503", code)
	}
	for _, want := range []string{`"healthy":false`, `"state":"failed"`, `"failures":9`} {
		if !strings.Contains(body, want) {
			t.Errorf("degraded healthz body missing %s: %q", want, body)
		}
	}
}

// TestHealthzDetail pins the degradation-context hook: the detail payload is
// attached only to 503 replies, so healthy probes stay small and a failing
// probe carries its explanation.
func TestHealthzDetail(t *testing.T) {
	comps := []ComponentHealth{{Component: "fw", State: "healthy", Healthy: true}}
	mux := NewMux(NewRegistry(), nil)
	calls := 0
	AddHealthzDetail(mux, func() []ComponentHealth { return comps }, func() any {
		calls++
		return map[string]any{"last_decision": "bp_on chain=2"}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func() (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get(); code != http.StatusOK || strings.Contains(body, "last_decision") {
		t.Errorf("healthy reply should omit detail: code=%d body=%q", code, body)
	}
	if calls != 0 {
		t.Errorf("detail hook called %d times on healthy probes", calls)
	}

	comps[0] = ComponentHealth{Component: "fw", State: "failed",
		Detail: map[string]float64{"park_ratio": 0.25}}
	code, body := get()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded: code = %d, want 503", code)
	}
	for _, want := range []string{`"last_decision":"bp_on chain=2"`, `"park_ratio":0.25`} {
		if !strings.Contains(body, want) {
			t.Errorf("degraded reply missing %s: %q", want, body)
		}
	}
	if calls != 1 {
		t.Errorf("detail hook called %d times, want 1", calls)
	}
}
