package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestRecorderSampleAndCSV(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pkts_total", "", L("nf", "fw"))
	g := r.Gauge("depth", "")
	h := r.Histogram("lat", "")

	rec := NewRecorder(r, 16)
	c.Add(10)
	g.Set(3)
	h.Observe(100)
	rec.Sample(0.1)
	c.Add(5)
	g.Set(1)
	rec.Sample(0.2)

	if rec.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rec.Len())
	}
	times, vals, ok := rec.Column(`pkts_total{nf="fw"}`)
	if !ok || len(vals) != 2 || vals[0] != 10 || vals[1] != 15 {
		t.Errorf("counter column: ok=%v times=%v vals=%v", ok, times, vals)
	}
	if _, vals, ok := rec.Column("lat_count"); !ok || vals[0] != 1 {
		t.Errorf("histogram _count column: ok=%v vals=%v", ok, vals)
	}

	var sb strings.Builder
	if err := rec.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("CSV output invalid: %v\n%s", err, sb.String())
	}
	if len(rows) != 3 {
		t.Fatalf("CSV rows = %d, want header + 2", len(rows))
	}
	if rows[0][0] != "time" || rows[0][1] != `pkts_total{nf="fw"}` {
		t.Errorf("CSV header = %v", rows[0])
	}
	if rows[1][0] != "0.1" || rows[1][1] != "10" || rows[2][1] != "15" {
		t.Errorf("CSV data = %v / %v", rows[1], rows[2])
	}
}

func TestRecorderRingOverwrite(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	rec := NewRecorder(r, 3)
	for i := 0; i < 5; i++ {
		c.Inc()
		rec.Sample(float64(i))
	}
	if rec.Len() != 3 || rec.Overwritten() != 2 {
		t.Fatalf("len=%d overwritten=%d, want 3/2", rec.Len(), rec.Overwritten())
	}
	times, vals, _ := rec.Column("n_total")
	if times[0] != 2 || vals[0] != 3 || times[2] != 4 || vals[2] != 5 {
		t.Errorf("retained window: times=%v vals=%v", times, vals)
	}
}

func TestRecorderLateColumns(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("early_total", "")
	rec := NewRecorder(r, 8)
	c.Inc()
	rec.Sample(0)

	// A series registered after the first sample: earlier rows must export
	// empty cells, not zeros.
	g := r.Gauge("late", "")
	g.Set(9)
	rec.Sample(1)

	var sb strings.Builder
	if err := rec.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	lateIdx := -1
	for i, h := range rows[0] {
		if h == "late" {
			lateIdx = i
		}
	}
	if lateIdx < 0 {
		t.Fatalf("late column missing from header %v", rows[0])
	}
	if rows[1][lateIdx] != "" {
		t.Errorf("pre-registration cell = %q, want empty", rows[1][lateIdx])
	}
	if rows[2][lateIdx] != "9" {
		t.Errorf("post-registration cell = %q, want 9", rows[2][lateIdx])
	}

	var js struct {
		Columns []string `json:"columns"`
		Samples []struct {
			T      float64    `json:"t"`
			Values []*float64 `json:"values"`
		} `json:"samples"`
	}
	sb.Reset()
	if err := rec.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(sb.String()), &js); err != nil {
		t.Fatalf("recorder JSON invalid: %v", err)
	}
	// JSON columns omit the CSV's leading "time" column.
	if js.Samples[0].Values[lateIdx-1] != nil {
		t.Errorf("JSON pre-registration cell = %v, want null", *js.Samples[0].Values[lateIdx-1])
	}
}
