package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// NewMux builds the exposition endpoints over a gatherer:
//
//	/metrics        Prometheus text format
//	/snapshot       JSON metric dump
//	/events         structured event log (when log is non-nil)
//	/debug/pprof/*  Go runtime profiling
//
// Pass a *Registry to gather live (safe when all instruments are owned/
// atomic, as in the live dataplane), or a *Published cache updated by the
// producer (how a running simulation exposes metrics race-free).
func NewMux(g Gatherer, log *EventLog) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, g)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		WriteJSON(w, g)
	})
	if log != nil {
		mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			log.WriteJSON(w)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartServer listens on addr (e.g. ":9090", "127.0.0.1:0") and serves the
// exposition mux in the background. The returned server's Addr field holds
// the bound address; shut it down with Close or Shutdown.
func StartServer(addr string, g Gatherer, log *EventLog) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: NewMux(g, log)}
	go srv.Serve(ln)
	return srv, nil
}
