package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// NewMux builds the exposition endpoints over a gatherer:
//
//	/metrics        Prometheus text format
//	/snapshot       JSON metric dump
//	/events         structured event log (when log is non-nil)
//	/debug/pprof/*  Go runtime profiling
//
// Pass a *Registry to gather live (safe when all instruments are owned/
// atomic, as in the live dataplane), or a *Published cache updated by the
// producer (how a running simulation exposes metrics race-free).
func NewMux(g Gatherer, log *EventLog) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, g)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		WriteJSON(w, g)
	})
	if log != nil {
		mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			log.WriteJSON(w)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ComponentHealth is one component's row in the /healthz payload: its
// supervision state, whether it currently counts as healthy, and its
// restart/failure history. Producers (e.g. the dataplane engine) expose a
// snapshot function returning one row per stage.
type ComponentHealth struct {
	Component string `json:"component"`
	State     string `json:"state"`
	Healthy   bool   `json:"healthy"`
	Restarts  uint64 `json:"restarts"`
	Failures  uint64 `json:"failures"`
	// Detail carries component-specific numeric telemetry (e.g. a TX
	// shard's park ratio and drain efficiency); omitted when empty.
	Detail map[string]float64 `json:"detail,omitempty"`
}

// AddHealthz mounts a /healthz endpoint on the mux. Each request calls src
// for a fresh snapshot and replies with a JSON body:
//
//	{"healthy": bool, "components": [...]}
//
// Status is 200 when every component is healthy, 503 otherwise — so plain
// HTTP probes (load balancers, uptime checks) work without parsing.
func AddHealthz(mux *http.ServeMux, src func() []ComponentHealth) {
	AddHealthzDetail(mux, src, nil)
}

// AddHealthzDetail is AddHealthz with a degradation-context hook: when any
// component is unhealthy (the 503 reply) and detail is non-nil, its return
// value is included as a "detail" field — the dataplane passes the tail of
// its decision journal here, so a failing probe carries the recent
// control-plane decisions that explain it without a second round trip.
func AddHealthzDetail(mux *http.ServeMux, src func() []ComponentHealth, detail func() any) {
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		comps := src()
		healthy := true
		for _, c := range comps {
			if !c.Healthy {
				healthy = false
				break
			}
		}
		w.Header().Set("Content-Type", "application/json")
		body := struct {
			Healthy    bool              `json:"healthy"`
			Components []ComponentHealth `json:"components"`
			Detail     any               `json:"detail,omitempty"`
		}{Healthy: healthy, Components: comps}
		if !healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
			if detail != nil {
				body.Detail = detail()
			}
		}
		json.NewEncoder(w).Encode(body)
	})
}

// StartServer listens on addr (e.g. ":9090", "127.0.0.1:0") and serves the
// exposition mux in the background. The returned server's Addr field holds
// the bound address; shut it down with Close or Shutdown.
func StartServer(addr string, g Gatherer, log *EventLog) (*http.Server, error) {
	return StartServerMux(addr, NewMux(g, log))
}

// StartServerMux is StartServer for a caller-built mux — use it to mount
// extra endpoints (AddHealthz) before serving.
func StartServerMux(addr string, mux *http.ServeMux) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux}
	go srv.Serve(ln)
	return srv, nil
}
