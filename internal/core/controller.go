// Package core implements NFVnice's control loop: the monitor thread that
// estimates each NF's load every millisecond from its packet arrival rate
// and sampled median service time, and the weight assigner that converts
// loads into cgroup cpu.shares every 10 ms:
//
//	Shares_i = Priority_i * load(i) / TotalLoad(core),  load(i) = λ_i · s_i
//
// This is the paper's rate-cost proportional fairness. The controller never
// touches the data path; it reads shared meters and writes cpu.shares, the
// same separation of load estimation from CPU allocation the paper insists
// on (sysfs writes cost ~5 µs and must stay off the packet path).
package core

import (
	"fmt"

	"nfvnice/internal/cgroups"
	"nfvnice/internal/cpusched"
	"nfvnice/internal/eventsim"
	"nfvnice/internal/nf"
	"nfvnice/internal/simtime"
)

// Params tune the control loop.
type Params struct {
	// MonitorInterval is the load-estimation period (1 ms — the paper's
	// 1000 Hz monitoring).
	MonitorInterval simtime.Cycles
	// WeightInterval is the cpu.shares update period (10 ms).
	WeightInterval simtime.Cycles
	// ShareScale is the total cpu.shares distributed across the NFs of
	// one core.
	ShareScale int
	// LoadSmoothing is the EWMA weight folding each 1 ms load sample into
	// the estimate used at weight-update time.
	LoadSmoothing float64
	// MinShare floors every managed NF's cpu.shares: the paper's
	// requirement that "all competing NFs get a minimal CPU share
	// necessary to progress" (and the escape hatch from the bootstrap
	// deadlock where an NF with no CPU never produces service-time
	// samples).
	MinShare int
	// UseMeanEstimator switches the service-time estimator from the
	// median to the mean (the estimator ablation; the paper argues the
	// median resists context-switch outliers).
	UseMeanEstimator bool
}

// DefaultParams returns the paper's control-loop settings.
func DefaultParams() Params {
	return Params{
		MonitorInterval: simtime.Millisecond,
		WeightInterval:  10 * simtime.Millisecond,
		ShareScale:      10 * cgroups.DefaultShares,
		LoadSmoothing:   0.10,
		MinShare:        10 * cgroups.DefaultShares / 100, // 1% floor
	}
}

// nfEntry is the controller's per-NF state.
type nfEntry struct {
	nf    *nf.NF
	group *cgroups.Group
	core  *cpusched.Core
	load  float64 // smoothed λ·s, in fractional cores
}

// Controller drives rate-cost proportional CPU allocation.
type Controller struct {
	eng    *eventsim.Engine
	fs     *cgroups.FS
	params Params

	entries []*nfEntry
	byCore  map[*cpusched.Core][]*nfEntry

	// Loads exposes the latest smoothed load per NF id (for metrics).
	Loads []float64

	// OnShares, when set, observes every effective cpu.shares write
	// (tracing).
	OnShares func(nfID int, shares int, now simtime.Cycles)
}

// New returns a controller; register NFs with Manage, then Start.
func New(eng *eventsim.Engine, fs *cgroups.FS, params Params) *Controller {
	return &Controller{
		eng:    eng,
		fs:     fs,
		params: params,
		byCore: make(map[*cpusched.Core][]*nfEntry),
	}
}

// Manage places an NF under controller management. The NF's task must
// already be pinned to a core.
func (c *Controller) Manage(n *nf.NF) error {
	core := n.Task.Core()
	if core == nil {
		panic("core: Manage before the NF's task is pinned")
	}
	// Cgroup directories are per NF process: key by id so NFs may share
	// human-readable names.
	g, err := c.fs.Create(fmt.Sprintf("nf%d-%s", n.ID, n.Name), n.Task)
	if err != nil {
		return err
	}
	e := &nfEntry{nf: n, group: g, core: core}
	c.entries = append(c.entries, e)
	c.byCore[core] = append(c.byCore[core], e)
	for len(c.Loads) <= n.ID {
		c.Loads = append(c.Loads, 0)
	}
	return nil
}

// Start arms the monitor and weight-update timers.
func (c *Controller) Start() {
	c.eng.Every(c.params.MonitorInterval, c.params.MonitorInterval, c.monitorTick)
	c.eng.Every(c.params.WeightInterval, c.params.WeightInterval, c.weightTick)
}

// monitorTick estimates load(i) = λ_i · s_i for every NF.
func (c *Controller) monitorTick() {
	now := c.eng.Now()
	for _, e := range c.entries {
		lambda := float64(e.nf.ArrivalMeter.Snapshot(now)) // packets/s
		var svc simtime.Cycles
		if c.params.UseMeanEstimator {
			svc = e.nf.EstimatedServiceTimeMean(now)
		} else {
			svc = e.nf.EstimatedServiceTime(now)
		}
		if svc == 0 {
			// No samples yet (fresh NF or one starved of CPU): leave the
			// load estimate alone rather than driving it — and the NF's
			// weight — to zero.
			continue
		}
		sample := lambda * svc.Seconds() // fractional cores of demand
		a := c.params.LoadSmoothing
		e.load = a*sample + (1-a)*e.load
		c.Loads[e.nf.ID] = e.load
	}
}

// weightTick converts loads into cpu.shares per core.
func (c *Controller) weightTick() {
	for _, entries := range c.byCore {
		var total float64
		for _, e := range entries {
			if e.load > 0 {
				total += e.load * e.nf.Priority
			} else {
				// An NF without a load estimate yet (estimator still
				// warming) is treated as carrying a default share of the
				// core so its weight stays at the kernel default rather
				// than being floored into starvation.
				total += float64(cgroups.DefaultShares) / float64(c.params.ShareScale)
			}
		}
		if total <= 0 {
			continue
		}
		for _, e := range entries {
			if e.load <= 0 {
				continue // leave the default cpu.shares in place
			}
			frac := e.load * e.nf.Priority / total
			shares := int(frac * float64(c.params.ShareScale))
			if shares < c.params.MinShare {
				shares = c.params.MinShare
			}
			if c.fs.SetShares(e.group, shares) > 0 && c.OnShares != nil {
				c.OnShares(e.nf.ID, shares, c.eng.Now())
			}
		}
	}
}

// ShareOf reports the NF's current cpu.shares (for metrics).
func (c *Controller) ShareOf(n *nf.NF) int {
	for _, e := range c.entries {
		if e.nf == n {
			return e.group.Shares()
		}
	}
	return 0
}
