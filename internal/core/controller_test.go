package core

import (
	"testing"

	"nfvnice/internal/cgroups"
	"nfvnice/internal/cpusched"
	"nfvnice/internal/eventsim"
	"nfvnice/internal/nf"
	"nfvnice/internal/packet"
	"nfvnice/internal/simtime"
)

// feeder keeps an NF's receive ring topped up and counts arrivals, emulating
// the manager's Rx path at a fixed offered rate.
func feed(eng *eventsim.Engine, pool *packet.Pool, n *nf.NF, rate simtime.Rate) {
	interval := 10 * simtime.Microsecond
	perTick := int(float64(rate) * interval.Seconds())
	eng.Every(0, interval, func() {
		for i := 0; i < perTick; i++ {
			n.ArrivalMeter.Inc()
			pkt := pool.Get()
			if pkt == nil {
				return
			}
			pkt.Size = 64
			if !n.Rx.Enqueue(eng.Now(), pkt) {
				pkt.Release()
				continue
			}
		}
		if n.Task.Core() != nil && n.WantsWake() {
			n.Task.Core().Wake(n.Task)
		}
	})
	// Drain the Tx ring so the NF never hits local backpressure.
	eng.Every(0, interval, func() {
		n.Tx.DrainAndRelease(eng.Now())
	})
}

func TestRateCostProportionalWeights(t *testing.T) {
	eng := eventsim.New()
	pool := packet.NewPool(65536)
	fs := cgroups.NewFS()
	ctl := New(eng, fs, DefaultParams())
	core := cpusched.NewCore(0, eng, cpusched.NewCFS(), cpusched.DefaultCoreParams())

	light := nf.New(0, "light", nf.FixedCost(300), nf.DefaultParams(), 1)
	heavy := nf.New(1, "heavy", nf.FixedCost(900), nf.DefaultParams(), 2)
	core.AddTask(light.Task)
	core.AddTask(heavy.Task)
	if err := ctl.Manage(light); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Manage(heavy); err != nil {
		t.Fatal(err)
	}
	// Same arrival rate, 1:3 cost: shares must converge to ~1:3.
	feed(eng, pool, light, 10e6)
	feed(eng, pool, heavy, 10e6)
	ctl.Start()
	eng.RunUntil(300 * simtime.Millisecond)

	sl, sh := ctl.ShareOf(light), ctl.ShareOf(heavy)
	ratio := float64(sh) / float64(sl)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("share ratio = %.2f (light=%d heavy=%d), want ~3", ratio, sl, sh)
	}
	if ctl.Loads[1] < ctl.Loads[0]*2 {
		t.Fatalf("loads not proportional: %v", ctl.Loads)
	}
}

func TestPriorityScalesShares(t *testing.T) {
	eng := eventsim.New()
	pool := packet.NewPool(65536)
	fs := cgroups.NewFS()
	ctl := New(eng, fs, DefaultParams())
	core := cpusched.NewCore(0, eng, cpusched.NewCFS(), cpusched.DefaultCoreParams())
	a := nf.New(0, "a", nf.FixedCost(500), nf.DefaultParams(), 1)
	b := nf.New(1, "b", nf.FixedCost(500), nf.DefaultParams(), 2)
	b.Priority = 4 // operator-differentiated service
	core.AddTask(a.Task)
	core.AddTask(b.Task)
	ctl.Manage(a)
	ctl.Manage(b)
	feed(eng, pool, a, 8e6)
	feed(eng, pool, b, 8e6)
	ctl.Start()
	eng.RunUntil(300 * simtime.Millisecond)
	ratio := float64(ctl.ShareOf(b)) / float64(ctl.ShareOf(a))
	if ratio < 3.2 || ratio > 4.8 {
		t.Fatalf("priority share ratio = %.2f, want ~4", ratio)
	}
}

func TestUnwarmedNFKeepsDefaultShares(t *testing.T) {
	eng := eventsim.New()
	pool := packet.NewPool(65536)
	fs := cgroups.NewFS()
	ctl := New(eng, fs, DefaultParams())
	core := cpusched.NewCore(0, eng, cpusched.NewCFS(), cpusched.DefaultCoreParams())
	active := nf.New(0, "active", nf.FixedCost(300), nf.DefaultParams(), 1)
	idle := nf.New(1, "idle", nf.FixedCost(300), nf.DefaultParams(), 2)
	core.AddTask(active.Task)
	core.AddTask(idle.Task)
	ctl.Manage(active)
	ctl.Manage(idle)
	feed(eng, pool, active, 10e6) // idle NF receives nothing
	ctl.Start()
	eng.RunUntil(200 * simtime.Millisecond)
	if got := ctl.ShareOf(idle); got != cgroups.DefaultShares {
		t.Fatalf("idle NF shares = %d, want untouched default %d", got, cgroups.DefaultShares)
	}
	if ctl.ShareOf(active) <= cgroups.DefaultShares {
		t.Fatalf("active NF shares = %d, want above default", ctl.ShareOf(active))
	}
}

func TestMinShareFloor(t *testing.T) {
	eng := eventsim.New()
	pool := packet.NewPool(65536)
	fs := cgroups.NewFS()
	params := DefaultParams()
	ctl := New(eng, fs, params)
	core := cpusched.NewCore(0, eng, cpusched.NewCFS(), cpusched.DefaultCoreParams())
	tiny := nf.New(0, "tiny", nf.FixedCost(50), nf.DefaultParams(), 1)
	huge := nf.New(1, "huge", nf.FixedCost(50000), nf.DefaultParams(), 2)
	core.AddTask(tiny.Task)
	core.AddTask(huge.Task)
	ctl.Manage(tiny)
	ctl.Manage(huge)
	feed(eng, pool, tiny, 1e6)
	feed(eng, pool, huge, 1e6)
	ctl.Start()
	eng.RunUntil(300 * simtime.Millisecond)
	if got := ctl.ShareOf(tiny); got < params.MinShare {
		t.Fatalf("tiny NF shares = %d below floor %d", got, params.MinShare)
	}
}

func TestManageRequiresPinnedTask(t *testing.T) {
	eng := eventsim.New()
	ctl := New(eng, cgroups.NewFS(), DefaultParams())
	n := nf.New(0, "loose", nf.FixedCost(1), nf.DefaultParams(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("managing an unpinned NF did not panic")
		}
	}()
	ctl.Manage(n)
}

func TestDuplicateManageFails(t *testing.T) {
	eng := eventsim.New()
	ctl := New(eng, cgroups.NewFS(), DefaultParams())
	core := cpusched.NewCore(0, eng, cpusched.NewCFS(), cpusched.DefaultCoreParams())
	n := nf.New(0, "dup", nf.FixedCost(1), nf.DefaultParams(), 1)
	core.AddTask(n.Task)
	if err := ctl.Manage(n); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Manage(n); err == nil {
		t.Fatal("duplicate Manage (same NF) should fail")
	}
}

func TestShareOfUnknownNF(t *testing.T) {
	ctl := New(eventsim.New(), cgroups.NewFS(), DefaultParams())
	n := nf.New(0, "x", nf.FixedCost(1), nf.DefaultParams(), 1)
	if ctl.ShareOf(n) != 0 {
		t.Fatal("unknown NF should report 0 shares")
	}
}
