// Package exp contains one constructor per table and figure in the paper's
// evaluation (§4): each builds the corresponding workload on the public
// Platform API, runs it, and emits the same rows or series the paper
// reports. The cmd/nfvsim binary and the repository's bench harness both
// call into this package; EXPERIMENTS.md is generated from its output.
package exp

import (
	"fmt"
	"strings"

	"nfvnice"
)

// Durations control warmup (excluded from measurement) and the measured
// window of each run.
type Durations struct {
	Warm, Meas nfvnice.Cycles
}

// Default durations give stable steady-state numbers; Quick is for tests.
func Default() Durations {
	return Durations{Warm: nfvnice.Milliseconds(100), Meas: nfvnice.Milliseconds(300)}
}

// Quick returns short windows for smoke tests.
func Quick() Durations {
	return Durations{Warm: nfvnice.Milliseconds(30), Meas: nfvnice.Milliseconds(80)}
}

// Table is a paper-style result table: labelled rows of float values.
type Table struct {
	ID      string // e.g. "fig7", "table3"
	Title   string
	Columns []string // Columns[0] labels the row-name column
	Rows    []Row
	// Fmt formats values (default "%.3f").
	Fmt string
}

// Row is one table line.
type Row struct {
	Label  string
	Values []float64
}

// Add appends a row.
func (t *Table) Add(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// Get returns the value at (rowLabel, column) for assertions in tests; ok is
// false when not found.
func (t *Table) Get(rowLabel, column string) (float64, bool) {
	col := -1
	for i, c := range t.Columns {
		if c == column {
			col = i - 1 // Columns[0] is the label column
		}
	}
	if col < 0 {
		return 0, false
	}
	for _, r := range t.Rows {
		if r.Label == rowLabel && col < len(r.Values) {
			return r.Values[col], true
		}
	}
	return 0, false
}

// String renders the table as aligned text.
func (t *Table) String() string {
	f := t.Fmt
	if f == "" {
		f = "%.3f"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	cells := make([][]string, 0, len(t.Rows)+1)
	header := make([]string, len(t.Columns))
	copy(header, t.Columns)
	cells = append(cells, header)
	for _, r := range t.Rows {
		row := make([]string, len(t.Columns))
		row[0] = r.Label
		for i, v := range r.Values {
			if i+1 < len(row) {
				row[i+1] = fmt.Sprintf(f, v)
			}
		}
		cells = append(cells, row)
	}
	for _, row := range cells {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range cells {
		for i, c := range row {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for _, w := range widths {
				b.WriteString(strings.Repeat("-", w+2))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	f := t.Fmt
	if f == "" {
		f = "%.3f"
	}
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(r.Label)
		for _, v := range r.Values {
			b.WriteByte(',')
			fmt.Fprintf(&b, f, v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Result bundles an experiment's tables (a figure plus its companion tables
// when they come from the same runs).
type Result struct {
	Tables []*Table
}

// String concatenates all tables.
func (r *Result) String() string {
	var b strings.Builder
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Find returns the table with the given id, or nil.
func (r *Result) Find(id string) *Table {
	for _, t := range r.Tables {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// Runner is an experiment entry point, keyed by id in the Registry.
type Runner func(d Durations) *Result

// Registry maps experiment ids to runners, in presentation order.
func Registry() []struct {
	ID   string
	Desc string
	Run  Runner
} {
	return []struct {
		ID   string
		Desc string
		Run  Runner
	}{
		{"fig1a", "Scheduler (in)ability to share a core fairly: homogeneous NFs", Fig1a},
		{"fig1b", "Scheduler (in)ability to share a core fairly: heterogeneous NFs", Fig1b},
		{"table1", "Context switches/s, homogeneous NFs", Table1},
		{"table2", "Context switches/s, heterogeneous NFs", Table2},
		{"fig7", "3-NF chain on one core: modes x schedulers throughput", Fig7},
		{"table3", "Packet drop rate after processing (wasted work)", Table3},
		{"table4", "Scheduling latency and runtime per NF", Table4},
		{"table5", "3-NF chain pinned to 3 cores: svc rate, drops, CPU util", Table5},
		{"fig9", "Two chains sharing NFs across 4 cores (+Table 6)", Fig9},
		{"fig10", "Variable per-packet processing costs", Fig10},
		{"fig11", "All 6 orderings of the Low/Med/High chain", Fig11},
		{"fig12", "Workload heterogeneity: 1-6 flows with random NF order", Fig12},
		{"fig13", "TCP/UDP performance isolation time series", Fig13},
		{"fig14", "Async disk I/O: throughput vs packet size", Fig14},
		{"fig15a", "Dynamic CPU weight adaptation time series", Fig15a},
		{"fig15b", "Jain's fairness index vs NF cost diversity", Fig15b},
		{"fig15c", "CPU share and throughput at diversity 6", Fig15c},
		{"fig16", "Chain lengths 1-10, single core and 3 cores", Fig16},
		{"sweep", "Watermark tuning sweep (section 4.3.8)", WatermarkSweep},
		{"ecn", "Extension: ECN vs loss signalling for cross-host responsive flows", ECN},
		{"customsched", "Extension: the abandoned queue-length-aware kernel scheduler (section 3.2)", CustomSched},
		{"latency", "Extension: end-to-end latency percentiles per feature mode", Latency},
		{"poisson", "Extension: Poisson vs CBR arrivals robustness", Poisson},
		{"crosshost", "Extension: a chain spanning two hosts over a link (section 3.3)", CrossHost},
		{"ablation", "Design-choice ablations (weight period, estimator, batch, BP scope)", Ablations},
	}
}

// Lookup finds a registered experiment by id.
func Lookup(id string) (Runner, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}
