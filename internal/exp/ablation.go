package exp

import (
	"fmt"

	"nfvnice"
	"nfvnice/internal/mgr"
	"nfvnice/internal/simtime"
	"nfvnice/internal/stats"
)

// diversityJain runs the 6-NF diversity scenario (Fig 15b/c) under a custom
// config and reports Jain's index over per-flow throughput.
func diversityJain(cfg nfvnice.Config, variable bool, d Durations) float64 {
	costs := diversityCosts(6)
	p := nfvnice.NewPlatform(cfg)
	core := p.AddCore()
	chains := make([]int, len(costs))
	for i, c := range costs {
		var model nfvnice.CostModel
		if variable {
			// ±50% per-packet jitter stresses the estimator.
			model = nfvnice.UniformCost(c/2, c+c/2)
		} else {
			model = nfvnice.FixedCost(c)
		}
		id := p.AddNF(nfName(i), model, core)
		chains[i] = p.AddChain(nfName(i), id)
		f := nfvnice.UDPFlow(i, 64)
		p.MapFlow(f, chains[i])
		p.AddCBR(f, 1.1e6)
	}
	s := measure(p, d)
	tputs := make([]float64, len(chains))
	for i, ch := range chains {
		tputs[i] = mpps(p.ChainDeliveredSince(s, ch))
	}
	return stats.Jain(tputs)
}

// fig9Chain1 runs the Fig 9 shared-NF two-chain topology under a custom
// feature set and reports chain-1 throughput (the victim of head-of-line
// blocking) and total wasted work.
func fig9Chain1(features mgr.Features, d Durations) (chain1, wasted float64) {
	cfg := nfvnice.DefaultConfig(nfvnice.SchedNormal, nfvnice.ModeNFVnice)
	cfg.FeatureOverride = &features
	p := nfvnice.NewPlatform(cfg)
	costs := []nfvnice.Cycles{270, 120, 4500, 300}
	ids := make([]int, 4)
	for i, c := range costs {
		ids[i] = p.AddNF(nfName(i), nfvnice.FixedCost(c), p.AddCore())
	}
	ch1 := p.AddChain("chain1", ids[0], ids[1], ids[3])
	ch2 := p.AddChain("chain2", ids[0], ids[2], ids[3])
	f1, f2 := nfvnice.UDPFlow(0, 64), nfvnice.UDPFlow(1, 64)
	p.MapFlow(f1, ch1)
	p.MapFlow(f2, ch2)
	half := nfvnice.LineRate10G(64) / 2
	p.AddCBR(f1, half)
	p.AddCBR(f2, half)
	s := measure(p, d)
	return mpps(p.ChainDeliveredSince(s, ch1)), float64(p.TotalWastedSince(s)) / 1e6
}

// Ablations quantifies the design choices DESIGN.md calls out.
func Ablations(d Durations) *Result {
	// Weight-update period: too slow and the allocation lags load; the
	// metric is fairness in the diversity scenario where weights do the
	// work (backpressure alone cannot equalize independent flows).
	weight := &Table{
		ID:      "ablation-weight-period",
		Title:   "cpu.shares update period, diversity-6 fairness: Jain index",
		Columns: []string{"period", "jain"},
	}
	for _, ms := range []float64{1, 10, 100, 1000} {
		cfg := nfvnice.DefaultConfig(nfvnice.SchedNormal, nfvnice.ModeNFVnice)
		cfg.CtlParams.WeightInterval = simtime.Cycles(ms * float64(simtime.Millisecond))
		weight.Add(fmt.Sprintf("%.0fms", ms), diversityJain(cfg, false, d))
	}

	// Estimator: median vs mean under ±50% per-packet cost jitter.
	est := &Table{
		ID:      "ablation-estimator",
		Title:   "Service-time estimator, diversity-6 with ±50% cost jitter: Jain index",
		Columns: []string{"estimator", "jain"},
	}
	for _, mean := range []bool{false, true} {
		cfg := nfvnice.DefaultConfig(nfvnice.SchedNormal, nfvnice.ModeNFVnice)
		cfg.CtlParams.UseMeanEstimator = mean
		name := "median"
		if mean {
			name = "mean"
		}
		est.Add(name, diversityJain(cfg, true, d))
	}

	// Batch size: throughput of the Fig 7 chain (yield-check granularity
	// vs per-batch overhead amortization).
	batch := &Table{
		ID:      "ablation-batch",
		Title:   "libnf batch size (NFVnice, BATCH), Fig7 chain: throughput (Mpps)",
		Columns: []string{"batch", "throughput"},
	}
	for _, bs := range []int{4, 8, 32, 128, 512} {
		cfg := nfvnice.DefaultConfig(nfvnice.SchedBatch, nfvnice.ModeNFVnice)
		cfg.NFParams.BatchSize = bs
		p := nfvnice.NewPlatform(cfg)
		core := p.AddCore()
		ids := make([]int, 3)
		for i, c := range fig7Costs() {
			ids[i] = p.AddNF(nfName(i), nfvnice.FixedCost(c), core)
		}
		ch := p.AddChain("chain", ids...)
		f := nfvnice.UDPFlow(0, 64)
		p.MapFlow(f, ch)
		p.AddCBR(f, nfvnice.LineRate10G(64))
		s := measure(p, d)
		batch.Add(fmt.Sprintf("%d", bs), mpps(p.ChainDeliveredSince(s, ch)))
	}

	// Backpressure scope on the shared-NF topology: entry shedding frees
	// the shared upstream NF for the healthy chain; hop-by-hop holds
	// suffer head-of-line blocking at NF1; none wastes a core's worth of
	// work at the bottleneck queue.
	scope := &Table{
		ID:      "ablation-bp-scope",
		Title:   "Backpressure scope, Fig9 shared-NF topology: chain1 (Mpps) / wasted (Mpps)",
		Columns: []string{"scope", "chain1", "wasted"},
	}
	{
		f := mgr.FeatureNFVnice()
		c1, w := fig9Chain1(f, d)
		scope.Add("chain-entry", c1, w)
	}
	{
		f := mgr.FeatureNFVnice()
		f.NoEntryDrop = true
		c1, w := fig9Chain1(f, d)
		scope.Add("hop-by-hop", c1, w)
	}
	{
		f := mgr.FeatureCgroupsOnly()
		c1, w := fig9Chain1(f, d)
		scope.Add("none", c1, w)
	}

	return &Result{Tables: []*Table{weight, est, batch, scope}}
}
