package exp

import (
	"nfvnice"
)

// Fig14 reproduces Figure 14: two flows share a monitoring NF; only flow 1
// logs its packets to disk. With libnf's asynchronous double-buffered writer
// the NF overlaps I/O with packet processing; the synchronous baseline
// stalls the NF for every logged packet. Aggregate throughput is swept over
// packet sizes. (The disk, not the CPU, is the contended resource the async
// path hides; the BATCH scheduler is used as in the paper.)
func Fig14(d Durations) *Result {
	t := &Table{
		ID:      "fig14",
		Title:   "Aggregate throughput (Mpps) with one of two flows logging to disk",
		Columns: []string{"pktsize", "Sync I/O (default)", "Async I/O (NFVnice)", "Async gain x"},
	}
	for _, size := range []int{64, 128, 256, 512, 1024} {
		var rates [2]float64
		for vi, variant := range []string{"sync", "async"} {
			mode := nfvnice.ModeDefault
			if variant == "async" {
				mode = nfvnice.ModeNFVnice
			}
			p := nfvnice.NewPlatform(nfvnice.DefaultConfig(nfvnice.SchedBatch, mode))
			core := p.AddCore()
			// Payload-touching monitor: cost grows with packet size.
			mon := p.AddNF("monitor", nfvnice.ByteCost(200, 1), core)
			fwd := p.AddNF("fwd", nfvnice.FixedCost(150), core)
			ch := p.AddChain("mon-fwd", mon, fwd)
			f0 := nfvnice.UDPFlow(0, size)
			f1 := nfvnice.UDPFlow(1, size)
			p.MapFlow(f0, ch)
			p.MapFlow(f1, ch)
			half := nfvnice.LineRate10G(size) / 2
			p.AddCBR(f0, half)
			p.AddCBR(f1, half)
			logged := map[int]bool{1: true}
			if variant == "async" {
				p.AttachAsyncLogger(mon, logged)
			} else {
				p.AttachSyncLogger(mon, logged)
			}
			s := measure(p, d)
			rates[vi] = mpps(p.ChainDeliveredSince(s, ch))
		}
		gain := 0.0
		if rates[0] > 0 {
			gain = rates[1] / rates[0]
		}
		t.Add(sizeLabel(size), rates[0], rates[1], gain)
	}
	return &Result{Tables: []*Table{t}}
}

func sizeLabel(n int) string {
	switch n {
	case 64:
		return "64B"
	case 128:
		return "128B"
	case 256:
		return "256B"
	case 512:
		return "512B"
	case 1024:
		return "1024B"
	}
	return "?"
}
