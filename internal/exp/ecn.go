package exp

import (
	"nfvnice"
	"nfvnice/internal/mgr"
	"nfvnice/internal/traffic"
)

// ECN is an extension experiment for §3.3's cross-host story: when an
// NFVnice middlebox is only one hop of a chain spanning hosts, local
// backpressure cannot reach the remote sender — ECN marking is the lever
// for responsive flows. A TCP flow traverses a moderately overloaded NF;
// with ECN the flow converges to the NF's capacity with (almost) no losses,
// without it the queue must overflow to signal congestion.
func ECN(d Durations) *Result {
	t := &Table{
		ID:      "ecn",
		Title:   "TCP through a saturating NF: ECN vs loss-based congestion signalling",
		Columns: []string{"config", "goodput Mbps", "losses/s", "marks/s", "timeouts/s", "p50 latency µs"},
		Fmt:     "%.1f",
	}
	for _, ecnOn := range []bool{false, true} {
		cfg := nfvnice.DefaultConfig(nfvnice.SchedNormal, nfvnice.ModeNFVnice)
		if !ecnOn {
			f := nfvnice.ModeNFVnice.Features()
			f.ECN = false
			cfg.FeatureOverride = &f
		}
		// Small rings so loss-based signalling has to drop rather than
		// absorb entire windows; the ECN threshold scales with the ring.
		cfg.NFParams.RingSize = 256
		mp := mgr.DefaultParams(cfg.Mode.Features())
		mp.ECNThreshold = 128
		cfg.MgrParams = &mp
		p := nfvnice.NewPlatform(cfg)
		core := p.AddCore()
		// The NF can carry ~177 kpps; TCP at cwnd 4096/1470B wants more.
		nfid := p.AddNF("wan-opt", nfvnice.FixedCost(14700), core)
		ch := p.AddChain("wan", nfid)
		f := nfvnice.TCPFlow(0, 1470)
		p.MapFlow(f, ch)
		tcp := p.AddTCP(f, traffic.DefaultTCPParams())
		p.Start()
		tcp.Start()
		p.Run(d.Warm * 10)
		snapDelivered := tcp.DeliveredBytes.Total()
		snapLoss := tcp.Losses.Total()
		snapMarks := tcp.ECNEchoes.Total()
		snapTO := tcp.Timeouts.Total()
		meas := d.Meas * 10
		p.Run(d.Warm*10 + meas)
		secs := meas.Seconds()
		name := "loss-based (ECN off)"
		if ecnOn {
			name = "ECN (RFC 3168)"
		}
		t.Add(name,
			float64(tcp.DeliveredBytes.Total()-snapDelivered)*8/1e6/secs,
			float64(tcp.Losses.Total()-snapLoss)/secs,
			float64(tcp.ECNEchoes.Total()-snapMarks)/secs,
			float64(tcp.Timeouts.Total()-snapTO)/secs,
			p.LatencyQuantile(0.5))
	}
	return &Result{Tables: []*Table{t}}
}
