package exp

import (
	"nfvnice"
)

// Poisson is a robustness extension: the Fig 7 chain offered Poisson
// arrivals instead of MoonGen's CBR, at the same mean rate. Backpressure's
// hysteresis must absorb the burstiness without giving up throughput.
func Poisson(d Durations) *Result {
	t := &Table{
		ID:      "poisson",
		Title:   "Fig7 chain under Poisson vs CBR arrivals (BATCH): throughput (Mpps)",
		Columns: []string{"mode", "CBR", "Poisson"},
	}
	for _, mode := range []nfvnice.Mode{nfvnice.ModeDefault, nfvnice.ModeNFVnice} {
		row := make([]float64, 0, 2)
		for _, poisson := range []bool{false, true} {
			p := nfvnice.NewPlatform(nfvnice.DefaultConfig(nfvnice.SchedBatch, mode))
			core := p.AddCore()
			ids := make([]int, 3)
			for i, c := range fig7Costs() {
				ids[i] = p.AddNF(nfName(i), nfvnice.FixedCost(c), core)
			}
			ch := p.AddChain("chain", ids...)
			f := nfvnice.UDPFlow(0, 64)
			p.MapFlow(f, ch)
			if poisson {
				p.AddPoisson(f, nfvnice.LineRate10G(64))
			} else {
				p.AddCBR(f, nfvnice.LineRate10G(64))
			}
			s := measure(p, d)
			row = append(row, mpps(p.ChainDeliveredSince(s, ch)))
		}
		t.Add(mode.String(), row...)
	}
	return &Result{Tables: []*Table{t}}
}
