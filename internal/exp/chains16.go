package exp

import (
	"fmt"

	"nfvnice"
)

// Fig16 reproduces Figure 16: chains of length 1–10 built by cycling the
// Low/Med/High costs, in two placements — SC (all NFs share one core) and
// MC (NFs placed round-robin over three cores) — default NORMAL vs NFVnice.
func Fig16(d Durations) *Result {
	t := &Table{
		ID:    "fig16",
		Title: "Throughput (Mpps) vs chain length; SC = 1 core, MC = 3 cores round-robin",
		Columns: []string{"length",
			"SC Default", "SC NFVnice",
			"MC Default", "MC NFVnice"},
	}
	base := []nfvnice.Cycles{120, 270, 550}
	for length := 1; length <= 10; length++ {
		costs := make([]nfvnice.Cycles, length)
		for i := range costs {
			costs[i] = base[i%3]
		}
		var row []float64
		for _, cores := range []int{1, 3} {
			for _, mode := range []nfvnice.Mode{nfvnice.ModeDefault, nfvnice.ModeNFVnice} {
				p := nfvnice.NewPlatform(nfvnice.DefaultConfig(nfvnice.SchedNormal, mode))
				coreIDs := make([]int, cores)
				for i := range coreIDs {
					coreIDs[i] = p.AddCore()
				}
				ids := make([]int, length)
				for i := range ids {
					ids[i] = p.AddNF(fmt.Sprintf("NF%d", i+1), nfvnice.FixedCost(costs[i]), coreIDs[i%cores])
				}
				ch := p.AddChain("chain", ids...)
				f := nfvnice.UDPFlow(0, 64)
				p.MapFlow(f, ch)
				p.AddCBR(f, nfvnice.LineRate10G(64))
				s := measure(p, d)
				row = append(row, mpps(p.ChainDeliveredSince(s, ch)))
			}
		}
		t.Add(fmt.Sprintf("%d", length), row...)
	}
	return &Result{Tables: []*Table{t}}
}
