package exp

import (
	"fmt"
	"strings"
)

// Chart renders the table as horizontal ASCII bar groups — one group per
// row, one bar per column — scaled to the table's maximum value. It is how
// cmd/nfvsim turns result tables back into the paper's figures in a
// terminal.
func (t *Table) Chart() string {
	const barWidth = 50
	f := t.Fmt
	if f == "" {
		f = "%.3f"
	}
	maxVal := 0.0
	for _, r := range t.Rows {
		for _, v := range r.Values {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if maxVal <= 0 {
		b.WriteString("(no positive values to chart)\n")
		return b.String()
	}
	labelW := 0
	for _, c := range t.Columns[1:] {
		if len(c) > labelW {
			labelW = len(c)
		}
	}
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s\n", r.Label)
		for i, v := range r.Values {
			if i+1 >= len(t.Columns) {
				break
			}
			n := int(v / maxVal * barWidth)
			if v > 0 && n == 0 {
				n = 1
			}
			fmt.Fprintf(&b, "  %-*s |%s %s\n", labelW, t.Columns[i+1],
				strings.Repeat("█", n), fmt.Sprintf(f, v))
		}
	}
	return b.String()
}
