package exp

import (
	"nfvnice"
)

// fig1Schedulers are the three policies §2.2 compares (RR with its default
// 100 ms real-time slice).
func fig1Schedulers() []nfvnice.SchedPolicy {
	return []nfvnice.SchedPolicy{nfvnice.SchedNormal, nfvnice.SchedBatch, nfvnice.SchedRR100ms}
}

// fig1Loads returns the paper's offered loads: even 5 Mpps to all NFs, and
// uneven 6/6/3 Mpps.
func fig1Loads() (even, uneven []nfvnice.Rate) {
	return []nfvnice.Rate{5e6, 5e6, 5e6}, []nfvnice.Rate{6e6, 6e6, 3e6}
}

func runFig1(costs []nfvnice.Cycles, d Durations) (tputEven, tputUneven, cswEven, cswUneven *Table) {
	even, uneven := fig1Loads()
	mkTput := func(title string) *Table {
		return &Table{Columns: []string{"NF", "NORMAL", "BATCH", "RR"}, Title: title}
	}
	mkCsw := func(title string) *Table {
		return &Table{
			Columns: []string{"NF",
				"NORMAL cswch/s", "NORMAL nvcswch/s",
				"BATCH cswch/s", "BATCH nvcswch/s",
				"RR cswch/s", "RR nvcswch/s"},
			Title: title, Fmt: "%.0f",
		}
	}
	tputEven, tputUneven = mkTput("throughput (Mpps), even load"), mkTput("throughput (Mpps), uneven load")
	cswEven, cswUneven = mkCsw("context switches, even load"), mkCsw("context switches, uneven load")

	for li, loads := range [][]nfvnice.Rate{even, uneven} {
		tputRows := make([][]float64, len(costs))
		cswRows := make([][]float64, len(costs))
		for i := range costs {
			tputRows[i] = nil
			cswRows[i] = nil
		}
		for _, sched := range fig1Schedulers() {
			p, chains := parallelNFs(sched, nfvnice.ModeDefault, costs, loads)
			s := measure(p, d)
			m := p.NFMetricsSince(s)
			for i := range costs {
				tputRows[i] = append(tputRows[i], mpps(p.ChainDeliveredSince(s, chains[i])))
				cswRows[i] = append(cswRows[i], m[i].VoluntaryCswch, m[i].InvoluntaryCswch)
			}
		}
		tt, ct := tputEven, cswEven
		if li == 1 {
			tt, ct = tputUneven, cswUneven
		}
		for i := range costs {
			tt.Add(nfName(i), tputRows[i]...)
			ct.Add(nfName(i), cswRows[i]...)
		}
	}
	return tputEven, tputUneven, cswEven, cswUneven
}

// Fig1a reproduces Figure 1a: three homogeneous NFs (250 cycles/packet)
// sharing one core under NORMAL, BATCH and RR, with even (5/5/5 Mpps) and
// uneven (6/6/3 Mpps) offered load.
func Fig1a(d Durations) *Result {
	te, tu, _, _ := runFig1([]nfvnice.Cycles{250, 250, 250}, d)
	te.ID, tu.ID = "fig1a-even", "fig1a-uneven"
	te.Title = "Homogeneous NFs (250 cyc), " + te.Title
	tu.Title = "Homogeneous NFs (250 cyc), " + tu.Title
	return &Result{Tables: []*Table{te, tu}}
}

// Fig1b reproduces Figure 1b: heterogeneous NFs (500/250/50 cycles).
func Fig1b(d Durations) *Result {
	te, tu, _, _ := runFig1([]nfvnice.Cycles{500, 250, 50}, d)
	te.ID, tu.ID = "fig1b-even", "fig1b-uneven"
	te.Title = "Heterogeneous NFs (500/250/50 cyc), " + te.Title
	tu.Title = "Heterogeneous NFs (500/250/50 cyc), " + tu.Title
	return &Result{Tables: []*Table{te, tu}}
}

// Table1 reproduces Table 1: voluntary and involuntary context switches per
// second for the homogeneous-NF scenario.
func Table1(d Durations) *Result {
	_, _, ce, cu := runFig1([]nfvnice.Cycles{250, 250, 250}, d)
	ce.ID, cu.ID = "table1-even", "table1-uneven"
	ce.Title = "Homogeneous NFs, " + ce.Title
	cu.Title = "Homogeneous NFs, " + cu.Title
	return &Result{Tables: []*Table{ce, cu}}
}

// Table2 reproduces Table 2: context switches for heterogeneous NFs, where
// SCHED_NORMAL's wakeup preemption generates tens of thousands of
// involuntary switches per second on the heavy NF while BATCH stays near
// its timer tick.
func Table2(d Durations) *Result {
	_, _, ce, cu := runFig1([]nfvnice.Cycles{500, 250, 50}, d)
	ce.ID, cu.ID = "table2-even", "table2-uneven"
	ce.Title = "Heterogeneous NFs, " + ce.Title
	cu.Title = "Heterogeneous NFs, " + cu.Title
	return &Result{Tables: []*Table{ce, cu}}
}
