package exp

import (
	"nfvnice"
	"nfvnice/internal/traffic"
)

// Fig13 reproduces Figure 13 (performance isolation): one responsive TCP
// flow through NF1→NF2 on a shared core competes with 10 non-responsive UDP
// flows that also traverse NF3, a high-cost bottleneck on its own core
// capping them at ~280 Mbps. Without NFVnice the UDP packets consume NF1/NF2
// only to die at NF3's queue, crushing TCP; with per-chain backpressure the
// UDP load is shed at entry and TCP retains most of its throughput while UDP
// still gets its full bottleneck rate.
//
// Scale note: costs are ~4x the paper's and the timeline is compressed
// (UDP active seconds 5–13 of 20) to keep simulated-packet counts tractable;
// the contention ratios — UDP demand ≈ 120% of the shared core, NF3 capacity
// ≈ 280 Mbps — match the paper's setup.
func Fig13(d Durations) *Result {
	t := &Table{
		ID:    "fig13",
		Title: "Per-second goodput (Mbps); UDP flows active seconds 5-13",
		Columns: []string{"second",
			"Default TCP", "Default UDP",
			"NFVnice TCP", "NFVnice UDP"},
		Fmt: "%.1f",
	}
	const (
		totalSecs = 20
		udpStart  = 5
		udpStop   = 13
		udpFlows  = 10
		udpSize   = 256
		tcpSize   = 1470
	)
	type series struct{ tcp, udp []float64 }
	results := make(map[nfvnice.Mode]series)
	for _, mode := range []nfvnice.Mode{nfvnice.ModeDefault, nfvnice.ModeNFVnice} {
		p := nfvnice.NewPlatform(nfvnice.DefaultConfig(nfvnice.SchedNormal, mode))
		shared := p.AddCore()
		nf1 := p.AddNF("NF1-low", nfvnice.FixedCost(480), shared)
		nf2 := p.AddNF("NF2-med", nfvnice.FixedCost(1080), shared)
		nf3 := p.AddNF("NF3-high", nfvnice.FixedCost(19000), p.AddCore())

		tcpChain := p.AddChain("tcp", nf1, nf2)
		udpChain := p.AddChain("udp", nf1, nf2, nf3)

		tf := nfvnice.TCPFlow(0, tcpSize)
		p.MapFlow(tf, tcpChain)
		tp := traffic.DefaultTCPParams()
		tp.MaxCwnd = 64 // ≈4 Gbps at the base RTT, the paper's unloaded rate
		tcp := p.AddTCP(tf, tp)

		var udps []*traffic.CBR
		for i := 0; i < udpFlows; i++ {
			f := nfvnice.UDPFlow(100+i, udpSize)
			p.MapFlow(f, udpChain)
			g := p.AddCBR(f, 200_000) // 10 x 200 Kpps ≈ 120% of the shared core
			g.Stop()                  // armed at udpStart
			udps = append(udps, g)
		}
		p.Start()
		tcp.Start()

		var sr series
		sec := nfvnice.Seconds(1)
		snap := p.TakeSnapshot()
		for s := 1; s <= totalSecs; s++ {
			if s == udpStart+1 {
				for _, g := range udps {
					g.SetRate(200_000)
					// Stop() only gates emission; re-arm.
					g.Restart()
				}
			}
			if s == udpStop+1 {
				for _, g := range udps {
					g.Stop()
				}
			}
			p.Run(nfvnice.Cycles(s) * sec)
			sr.tcp = append(sr.tcp, p.ChainDeliveredMbpsSince(snap, tcpChain))
			sr.udp = append(sr.udp, p.ChainDeliveredMbpsSince(snap, udpChain))
			snap = p.TakeSnapshot()
		}
		results[mode] = sr
	}
	dr, nr := results[nfvnice.ModeDefault], results[nfvnice.ModeNFVnice]
	for s := 0; s < totalSecs; s++ {
		t.Add(secondLabel(s+1), dr.tcp[s], dr.udp[s], nr.tcp[s], nr.udp[s])
	}
	return &Result{Tables: []*Table{t}}
}

func secondLabel(s int) string {
	if s >= 10 {
		return string(rune('0'+s/10)) + string(rune('0'+s%10)) + "s"
	}
	return string(rune('0'+s)) + "s"
}
