package exp

import (
	"nfvnice"
)

// Latency is an extension experiment: end-to-end packet latency percentiles
// for the Fig 7 chain under each feature mode. The paper reports throughput
// and drops; latency is the other face of the same mechanism — the default
// platform runs every ring at capacity (maximum bufferbloat), while
// backpressure holds occupancy between the watermarks, bounding delay.
func Latency(d Durations) *Result {
	t := &Table{
		ID:      "latency",
		Title:   "End-to-end latency of delivered packets, Fig7 chain on BATCH (µs)",
		Columns: []string{"mode", "p50", "p90", "p99", "throughput Mpps"},
		Fmt:     "%.1f",
	}
	for _, mode := range nfvnice.AllModes() {
		p, ch := singleChain(nfvnice.SchedBatch, mode, fig7Costs(), nfvnice.LineRate10G(64))
		s := measure(p, d)
		t.Add(mode.String(),
			p.LatencyQuantile(0.50),
			p.LatencyQuantile(0.90),
			p.LatencyQuantile(0.99),
			float64(p.ChainDeliveredSince(s, ch))/1e6)
	}
	return &Result{Tables: []*Table{t}}
}
