package exp

import (
	"nfvnice"
)

// parallelNFs builds N independent single-NF chains sharing one core — the
// §2.2 motivation scenario (Fig 1, Tables 1-2) and the fairness experiments.
// costs[i] is NF i's per-packet cost; loads[i] its offered rate.
func parallelNFs(sched nfvnice.SchedPolicy, mode nfvnice.Mode, costs []nfvnice.Cycles, loads []nfvnice.Rate) (*nfvnice.Platform, []int) {
	p := nfvnice.NewPlatform(nfvnice.DefaultConfig(sched, mode))
	core := p.AddCore()
	chains := make([]int, len(costs))
	for i, c := range costs {
		id := p.AddNF(nfName(i), nfvnice.FixedCost(c), core)
		chains[i] = p.AddChain(nfName(i), id)
		f := nfvnice.UDPFlow(i, 64)
		p.MapFlow(f, chains[i])
		p.AddCBR(f, loads[i])
	}
	return p, chains
}

func nfName(i int) string {
	return "NF" + string(rune('1'+i))
}

// singleChain builds one service chain of the given per-NF costs on one
// shared core, offered one UDP flow at rate.
func singleChain(sched nfvnice.SchedPolicy, mode nfvnice.Mode, costs []nfvnice.Cycles, rate nfvnice.Rate) (*nfvnice.Platform, int) {
	p := nfvnice.NewPlatform(nfvnice.DefaultConfig(sched, mode))
	core := p.AddCore()
	ids := make([]int, len(costs))
	for i, c := range costs {
		ids[i] = p.AddNF(nfName(i), nfvnice.FixedCost(c), core)
	}
	ch := p.AddChain("chain", ids...)
	f := nfvnice.UDPFlow(0, 64)
	p.MapFlow(f, ch)
	p.AddCBR(f, rate)
	return p, ch
}

// measure runs warmup, snapshots, runs the window, and returns the snapshot.
func measure(p *nfvnice.Platform, d Durations) *nfvnice.Snapshot {
	p.Run(d.Warm)
	s := p.TakeSnapshot()
	p.Run(d.Warm + d.Meas)
	return s
}

// mpps converts a rate to Mpps for table cells.
func mpps(r nfvnice.Rate) float64 { return r.Mpps() }
