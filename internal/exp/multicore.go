package exp

import (
	"nfvnice"
)

// multiCoreChain builds a chain with each NF pinned to its own core.
func multiCoreChain(mode nfvnice.Mode, costs []nfvnice.Cycles, rate nfvnice.Rate) (*nfvnice.Platform, int) {
	p := nfvnice.NewPlatform(nfvnice.DefaultConfig(nfvnice.SchedNormal, mode))
	ids := make([]int, len(costs))
	for i, c := range costs {
		core := p.AddCore()
		ids[i] = p.AddNF(nfName(i), nfvnice.FixedCost(c), core)
	}
	ch := p.AddChain("chain", ids...)
	f := nfvnice.UDPFlow(0, 64)
	p.MapFlow(f, ch)
	p.AddCBR(f, rate)
	return p, ch
}

// Table5 reproduces Table 5: a 550/2200/4500-cycle chain with each NF on its
// own core. Default burns three full cores to deliver the bottleneck rate;
// NFVnice delivers the same aggregate with NF1/NF2 mostly idle.
func Table5(d Durations) *Result {
	t := &Table{
		ID:    "table5",
		Title: "3-NF chain (550/2200/4500 cyc), one NF per core, 64B line rate",
		Columns: []string{"NF",
			"Default svc (Mpps)", "Default drop (Mpps)", "Default CPU %",
			"NFVnice svc (Mpps)", "NFVnice drop (Mpps)", "NFVnice CPU %"},
	}
	costs := []nfvnice.Cycles{550, 2200, 4500}
	type res struct {
		svc, drop []float64
		util      []float64
		agg       float64
	}
	results := make(map[nfvnice.Mode]res)
	for _, mode := range []nfvnice.Mode{nfvnice.ModeDefault, nfvnice.ModeNFVnice} {
		p, ch := multiCoreChain(mode, costs, nfvnice.LineRate10G(64))
		s := measure(p, d)
		m := p.NFMetricsSince(s)
		cm := p.CoreMetricsSince(s)
		r := res{agg: mpps(p.ChainDeliveredSince(s, ch))}
		for i := range costs {
			r.svc = append(r.svc, float64(m[i].ProcessedPps)/1e6)
			r.drop = append(r.drop, float64(p.QueueDropSince(s, i))/1e6)
			r.util = append(r.util, cm[i].Utilization*100)
		}
		results[mode] = r
	}
	dr, nr := results[nfvnice.ModeDefault], results[nfvnice.ModeNFVnice]
	for i := range costs {
		t.Add(nfName(i), dr.svc[i], dr.drop[i], dr.util[i], nr.svc[i], nr.drop[i], nr.util[i])
	}
	t.Add("Aggregate", dr.agg, 0, (dr.util[0] + dr.util[1] + dr.util[2]), nr.agg, 0, (nr.util[0] + nr.util[1] + nr.util[2]))
	return &Result{Tables: []*Table{t}}
}

// Fig9 reproduces Figure 9 and Table 6: two chains sharing NF1 and NF4
// across four cores (chain1: NF1→NF2→NF4; chain2: NF1→NF3→NF4, with NF3 a
// 4500-cycle hog). Backpressure confines chain 2 to its bottleneck rate and
// roughly doubles chain 1's throughput.
func Fig9(d Durations) *Result {
	fig := &Table{
		ID:      "fig9",
		Title:   "Two chains sharing NF1/NF4 on 4 cores: chain throughput (Mpps)",
		Columns: []string{"chain", "Default", "NFVnice"},
	}
	tbl6 := &Table{
		ID:    "table6",
		Title: "Per-NF service rate (Mpps), drops (Mpps) and CPU %",
		Columns: []string{"NF",
			"Default svc", "Default drop", "Default CPU %",
			"NFVnice svc", "NFVnice drop", "NFVnice CPU %"},
	}
	costs := []nfvnice.Cycles{270, 120, 4500, 300}
	type res struct {
		chain1, chain2  float64
		svc, drop, util []float64
	}
	results := make(map[nfvnice.Mode]res)
	for _, mode := range []nfvnice.Mode{nfvnice.ModeDefault, nfvnice.ModeNFVnice} {
		p := nfvnice.NewPlatform(nfvnice.DefaultConfig(nfvnice.SchedNormal, mode))
		ids := make([]int, 4)
		for i, c := range costs {
			ids[i] = p.AddNF(nfName(i), nfvnice.FixedCost(c), p.AddCore())
		}
		ch1 := p.AddChain("chain1", ids[0], ids[1], ids[3])
		ch2 := p.AddChain("chain2", ids[0], ids[2], ids[3])
		f1, f2 := nfvnice.UDPFlow(0, 64), nfvnice.UDPFlow(1, 64)
		p.MapFlow(f1, ch1)
		p.MapFlow(f2, ch2)
		half := nfvnice.LineRate10G(64) / 2
		p.AddCBR(f1, half)
		p.AddCBR(f2, half)
		s := measure(p, d)
		m := p.NFMetricsSince(s)
		cm := p.CoreMetricsSince(s)
		r := res{
			chain1: mpps(p.ChainDeliveredSince(s, ch1)),
			chain2: mpps(p.ChainDeliveredSince(s, ch2)),
		}
		for i := range costs {
			r.svc = append(r.svc, float64(m[i].ProcessedPps)/1e6)
			r.drop = append(r.drop, float64(p.QueueDropSince(s, i))/1e6)
			r.util = append(r.util, cm[i].Utilization*100)
		}
		results[mode] = r
	}
	dr, nr := results[nfvnice.ModeDefault], results[nfvnice.ModeNFVnice]
	fig.Add("chain1", dr.chain1, nr.chain1)
	fig.Add("chain2", dr.chain2, nr.chain2)
	fig.Add("aggregate", dr.chain1+dr.chain2, nr.chain1+nr.chain2)
	for i := range costs {
		tbl6.Add(nfName(i), dr.svc[i], dr.drop[i], dr.util[i], nr.svc[i], nr.drop[i], nr.util[i])
	}
	return &Result{Tables: []*Table{fig, tbl6}}
}
