package exp

import (
	"strings"
	"testing"
)

func TestTableAccessors(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Columns: []string{"row", "a", "b"}}
	tb.Add("r1", 1.5, 2.5)
	tb.Add("r2", 3.5, 4.5)
	if v, ok := tb.Get("r2", "b"); !ok || v != 4.5 {
		t.Fatalf("Get = %v,%v", v, ok)
	}
	if _, ok := tb.Get("r2", "nope"); ok {
		t.Fatal("unknown column should miss")
	}
	if _, ok := tb.Get("nope", "a"); ok {
		t.Fatal("unknown row should miss")
	}
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "r1") || !strings.Contains(s, "3.500") {
		t.Fatalf("render missing content:\n%s", s)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "row,a,b\n") || !strings.Contains(csv, "r1,1.500,2.500") {
		t.Fatalf("csv wrong:\n%s", csv)
	}
}

func TestResultFind(t *testing.T) {
	r := &Result{Tables: []*Table{{ID: "a"}, {ID: "b"}}}
	if r.Find("b") == nil || r.Find("c") != nil {
		t.Fatal("Find broken")
	}
	_ = r.String()
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure from the paper's evaluation must be present.
	want := []string{
		"fig1a", "fig1b", "table1", "table2", "fig7", "table3", "table4",
		"table5", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15a", "fig15b", "fig15c", "fig16", "sweep", "ablation",
		"ecn", "customsched", "latency", "poisson", "crosshost",
	}
	reg := Registry()
	ids := make(map[string]bool)
	for _, e := range reg {
		ids[e.ID] = true
		if _, ok := Lookup(e.ID); !ok {
			t.Errorf("Lookup(%q) failed", e.ID)
		}
	}
	for _, id := range want {
		if !ids[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if _, ok := Lookup("nonsense"); ok {
		t.Error("Lookup of unknown id succeeded")
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	res := Fig7(Quick())
	tb := res.Find("fig7")
	if tb == nil {
		t.Fatal("fig7 table missing")
	}
	for _, sched := range []string{"NORMAL", "BATCH", "RR(1ms)", "RR(100ms)"} {
		def, _ := tb.Get("Default", sched)
		nfv, _ := tb.Get("NFVnice", sched)
		if nfv <= def {
			t.Errorf("%s: NFVnice %.3f not above Default %.3f", sched, nfv, def)
		}
		if nfv < 2.0 {
			t.Errorf("%s: NFVnice %.3f too far below the 2.77 Mpps ceiling", sched, nfv)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	res := Table3(Quick())
	tb := res.Find("table3")
	for _, nfRow := range []string{"NF1", "NF2"} {
		def, _ := tb.Get(nfRow, "BATCH Default")
		nfv, _ := tb.Get(nfRow, "BATCH NFVnice")
		if def < 100_000 {
			t.Errorf("%s default wasted %.0f pps: overload scenario broken", nfRow, def)
		}
		if nfv > def/20 {
			t.Errorf("%s NFVnice wasted %.0f vs default %.0f", nfRow, nfv, def)
		}
	}
}

func TestFig1bRRProportional(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	// The §2.2 motivation: under uneven load, RR allocates CPU by arrival
	// rate (NF3 at half load gets less), CFS equalizes.
	res := Fig1a(Quick())
	tb := res.Find("fig1a-uneven")
	nf1RR, _ := tb.Get("NF1", "RR")
	nf3RR, _ := tb.Get("NF3", "RR")
	if nf1RR <= nf3RR {
		t.Errorf("RR should favor the higher-rate NF: NF1 %.3f vs NF3 %.3f", nf1RR, nf3RR)
	}
	nf1N, _ := tb.Get("NF1", "NORMAL")
	nf3N, _ := tb.Get("NF3", "NORMAL")
	if nf1N/nf3N > 1.25 || nf1N/nf3N < 0.8 {
		t.Errorf("CFS should equalize: NF1 %.3f vs NF3 %.3f", nf1N, nf3N)
	}
}

func TestTable2WakeupPreemption(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	res := Table2(Quick())
	tb := res.Find("table2-even")
	// The light NF3 under NORMAL does a huge number of voluntary switches
	// whose wakeups involuntarily preempt the heavy NFs; BATCH suppresses
	// this by an order of magnitude or more.
	nf1Normal, _ := tb.Get("NF1", "NORMAL nvcswch/s")
	nf1Batch, _ := tb.Get("NF1", "BATCH nvcswch/s")
	if nf1Normal < 10_000 {
		t.Errorf("NORMAL nvcswch/s = %.0f, want tens of thousands", nf1Normal)
	}
	if nf1Batch > nf1Normal/10 {
		t.Errorf("BATCH nvcswch/s = %.0f vs NORMAL %.0f, want >=10x reduction", nf1Batch, nf1Normal)
	}
}

func TestFig15cRateCostFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	res := Fig15c(Default())
	tb := res.Find("fig15c")
	// NFVnice: lightest NF ~1% CPU, heaviest ~46%, equal throughput.
	cpu1, _ := tb.Get("NF1", "NFVnice CPU %")
	cpu6, _ := tb.Get("NF6", "NFVnice CPU %")
	if cpu1 > 3 {
		t.Errorf("lightest NF CPU = %.1f%%, want ~1%%", cpu1)
	}
	if cpu6 < 40 || cpu6 > 55 {
		t.Errorf("heaviest NF CPU = %.1f%%, want ~46%%", cpu6)
	}
	t1, _ := tb.Get("NF1", "NFVnice Mpps")
	t6, _ := tb.Get("NF6", "NFVnice Mpps")
	if t6 == 0 || t1/t6 > 1.6 || t1/t6 < 0.6 {
		t.Errorf("NFVnice throughputs not equalized: %.3f vs %.3f", t1, t6)
	}
	// Default skews heavily.
	d1, _ := tb.Get("NF1", "Default Mpps")
	d6, _ := tb.Get("NF6", "Default Mpps")
	if d1/d6 < 10 {
		t.Errorf("default skew only %.1fx, want >10x", d1/d6)
	}
}

func TestTable5CPURecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	res := Table5(Quick())
	tb := res.Find("table5")
	defU, _ := tb.Get("NF1", "Default CPU %")
	nfvU, _ := tb.Get("NF1", "NFVnice CPU %")
	if defU < 95 {
		t.Errorf("default NF1 util = %.1f%%, want ~100%%", defU)
	}
	if nfvU > 30 {
		t.Errorf("NFVnice NF1 util = %.1f%%, want ~12%% (backpressure idles it)", nfvU)
	}
	// Aggregate throughput preserved.
	defAgg, _ := tb.Get("Aggregate", "Default svc (Mpps)")
	nfvAgg, _ := tb.Get("Aggregate", "NFVnice svc (Mpps)")
	if nfvAgg < defAgg*0.95 {
		t.Errorf("NFVnice aggregate %.3f below default %.3f", nfvAgg, defAgg)
	}
}

func TestChartRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Columns: []string{"row", "a", "b"}}
	tb.Add("r1", 10, 5)
	tb.Add("r2", 0, 2.5)
	c := tb.Chart()
	if !strings.Contains(c, "r1") || !strings.Contains(c, "█") {
		t.Fatalf("chart missing bars:\n%s", c)
	}
	// Max value gets the widest bar; half value gets roughly half.
	lines := strings.Split(c, "\n")
	var aLen, bLen int
	for _, l := range lines {
		if strings.Contains(l, "a |") && strings.Contains(l, "10") {
			aLen = strings.Count(l, "█")
		}
		if strings.Contains(l, "b |") && strings.Contains(l, "5.000") {
			bLen = strings.Count(l, "█")
		}
	}
	if aLen == 0 || bLen == 0 || bLen*2 != aLen {
		t.Fatalf("bar scaling wrong: a=%d b=%d\n%s", aLen, bLen, c)
	}
	empty := &Table{ID: "e", Columns: []string{"row", "v"}}
	empty.Add("r", 0)
	if !strings.Contains(empty.Chart(), "no positive values") {
		t.Fatal("empty chart not handled")
	}
}
