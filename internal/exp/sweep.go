package exp

import (
	"fmt"

	"nfvnice"
)

// watermarkRun measures the Fig 7 chain under NFVnice/BATCH with explicit
// watermark fractions, returning throughput (Mpps), wasted work (Mpps), and
// median packet latency (µs). Rings are shrunk to 1024 descriptors so the
// watermark placement actually bites: with the default 4096 rings the
// hysteresis band dwarfs both the burst headroom needed above HIGH and the
// drain buffer needed below LOW, and every setting looks alike (which is
// itself a finding — see EXPERIMENTS.md).
func watermarkRun(high, low float64, d Durations) (tput, wasted, p50us float64) {
	cfg := nfvnice.DefaultConfig(nfvnice.SchedBatch, nfvnice.ModeNFVnice)
	cfg.NFParams.HighFrac = high
	cfg.NFParams.LowFrac = low
	cfg.NFParams.RingSize = 1024
	p := nfvnice.NewPlatform(cfg)
	core := p.AddCore()
	ids := make([]int, 3)
	for i, c := range fig7Costs() {
		ids[i] = p.AddNF(nfName(i), nfvnice.FixedCost(c), core)
	}
	ch := p.AddChain("chain", ids...)
	f := nfvnice.UDPFlow(0, 64)
	p.MapFlow(f, ch)
	p.AddCBR(f, nfvnice.LineRate10G(64))
	s := measure(p, d)
	return mpps(p.ChainDeliveredSince(s, ch)),
		float64(p.TotalWastedSince(s)) / 1e6,
		p.LatencyQuantile(0.5)
}

// WatermarkSweep reproduces the §4.3.8 tuning study: sweep the high
// watermark at a fixed 20-point margin, then sweep the margin at the chosen
// 80% high watermark. The paper lands on HIGH=80%, margin=20.
func WatermarkSweep(d Durations) *Result {
	highT := &Table{
		ID:      "sweep-high",
		Title:   "HIGH_WATER_MARK sweep (margin fixed at 20 points, 1024-slot rings): throughput / wasted (Mpps) / p50 latency (µs)",
		Columns: []string{"high", "throughput", "wasted", "p50us"},
	}
	for _, high := range []float64{0.30, 0.50, 0.70, 0.80, 0.90, 0.98} {
		tput, wasted, lat := watermarkRun(high, high-0.20, d)
		highT.Add(fmt.Sprintf("%.0f%%", high*100), tput, wasted, lat)
	}
	marginT := &Table{
		ID:      "sweep-margin",
		Title:   "Margin sweep (HIGH fixed at 80%, 1024-slot rings): throughput / wasted (Mpps) / p50 latency (µs)",
		Columns: []string{"margin", "throughput", "wasted", "p50us"},
	}
	for _, margin := range []float64{0.01, 0.05, 0.10, 0.20, 0.30, 0.50} {
		tput, wasted, lat := watermarkRun(0.80, 0.80-margin, d)
		marginT.Add(fmt.Sprintf("%.0fpt", margin*100), tput, wasted, lat)
	}
	return &Result{Tables: []*Table{highT, marginT}}
}
