package exp

import (
	"fmt"

	"nfvnice"
	"nfvnice/internal/cpusched"
	"nfvnice/internal/simtime"
)

// CustomSched reproduces the road not taken in §3.2: the authors first
// built a custom queue-length-aware CPU scheduler, but "synchronizing queue
// length information with the kernel, at the frequency necessary for NF
// scheduling, incurred overheads that outweighed any benefits". Running the
// deepest-backlog-first policy on the Fig 7 chain shows it loses twice
// over: (1) even with free synchronization, the deepest queue on an
// overloaded chain is the *entry* NF's (the wire refills it constantly), so
// the policy feeds the producer and starves the bottleneck — queue length
// alone is the wrong signal without chain topology; (2) every per-decision
// sync cost comes straight out of throughput. User-space NFVnice gets
// chain awareness (backpressure) and cost awareness (weights) over the
// stock scheduler with no kernel changes.
func CustomSched(d Durations) *Result {
	t := &Table{
		ID:      "customsched",
		Title:   "Queue-length-aware kernel scheduler vs user-space NFVnice (Fig7 chain, Mpps)",
		Columns: []string{"scheduler", "throughput", "switch+sync overhead %"},
	}
	run := func(cfg nfvnice.Config) (float64, float64) {
		p := nfvnice.NewPlatform(cfg)
		core := p.AddCore()
		ids := make([]int, 3)
		for i, c := range fig7Costs() {
			ids[i] = p.AddNF(nfName(i), nfvnice.FixedCost(c), core)
		}
		ch := p.AddChain("chain", ids...)
		f := nfvnice.UDPFlow(0, 64)
		p.MapFlow(f, ch)
		p.AddCBR(f, nfvnice.LineRate10G(64))
		s := measure(p, d)
		cm := p.CoreMetricsSince(s)
		return mpps(p.ChainDeliveredSince(s, ch)), cm[0].SwitchOverhead * 100
	}

	// Baseline: default BATCH, then user-space NFVnice over BATCH.
	{
		tput, ovh := run(nfvnice.DefaultConfig(nfvnice.SchedBatch, nfvnice.ModeDefault))
		t.Add("BATCH default", tput, ovh)
	}
	{
		tput, ovh := run(nfvnice.DefaultConfig(nfvnice.SchedBatch, nfvnice.ModeNFVnice))
		t.Add("NFVnice (user space)", tput, ovh)
	}
	// The custom scheduler at increasing kernel-sync cost per decision.
	for _, syncUs := range []float64{0, 2, 10, 50} {
		cfg := nfvnice.DefaultConfig(nfvnice.SchedBatch, nfvnice.ModeDefault)
		cfg.SchedulerFactory = func() cpusched.Scheduler {
			return cpusched.NewQLen(250 * simtime.Microsecond)
		}
		cp := cpusched.DefaultCoreParams()
		cp.PickOverhead = simtime.Cycles(syncUs * float64(simtime.Microsecond))
		cfg.CoreParams = &cp
		tput, ovh := run(cfg)
		t.Add(fmt.Sprintf("qlen-kernel (sync %.0fµs)", syncUs), tput, ovh)
	}
	return &Result{Tables: []*Table{t}}
}
