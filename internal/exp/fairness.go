package exp

import (
	"fmt"

	"nfvnice"
	"nfvnice/internal/stats"
)

// Fig15a reproduces Figure 15a: two NFs with a 1:3 cost ratio share a core
// at equal arrival rates; NF1's cost temporarily triples (matching NF2)
// mid-run. NFVnice's weights track the change (75/25 → 50/50 → 75/25 CPU);
// the default NORMAL scheduler stays pinned at 50/50 throughout.
//
// The timeline is compressed (cost change during seconds 11–20 of 30) and
// costs scaled up so simulated packet counts stay tractable; ratios match
// the paper.
func Fig15a(d Durations) *Result {
	t := &Table{
		ID:    "fig15a",
		Title: "CPU share (%) per second; NF1 cost x3 during seconds 11-20",
		Columns: []string{"second",
			"Default NF1", "Default NF2",
			"NFVnice NF1", "NFVnice NF2"},
		Fmt: "%.1f",
	}
	const totalSecs = 30
	type series struct{ nf1, nf2 []float64 }
	results := make(map[nfvnice.Mode]series)
	for _, mode := range []nfvnice.Mode{nfvnice.ModeDefault, nfvnice.ModeNFVnice} {
		p := nfvnice.NewPlatform(nfvnice.DefaultConfig(nfvnice.SchedNormal, mode))
		core := p.AddCore()
		dyn := nfvnice.NewDynamicCost(6500)
		nf1 := p.AddNF("NF1", dyn, core)
		nf2 := p.AddNF("NF2", nfvnice.FixedCost(19500), core)
		c1 := p.AddChain("c1", nf1)
		c2 := p.AddChain("c2", nf2)
		f1, f2 := nfvnice.UDPFlow(0, 64), nfvnice.UDPFlow(1, 64)
		p.MapFlow(f1, c1)
		p.MapFlow(f2, c2)
		// 400 Kpps each: NF1 demands 100% of a core, NF2 300%.
		p.AddCBR(f1, 400_000)
		p.AddCBR(f2, 400_000)
		p.Start()
		var sr series
		sec := nfvnice.Seconds(1)
		snap := p.TakeSnapshot()
		for s := 1; s <= totalSecs; s++ {
			switch s {
			case 11:
				dyn.Set(19500)
			case 21:
				dyn.Set(6500)
			}
			p.Run(nfvnice.Cycles(s) * sec)
			m := p.NFMetricsSince(snap)
			sr.nf1 = append(sr.nf1, m[0].CPUShare*100)
			sr.nf2 = append(sr.nf2, m[1].CPUShare*100)
			snap = p.TakeSnapshot()
		}
		results[mode] = sr
	}
	dr, nr := results[nfvnice.ModeDefault], results[nfvnice.ModeNFVnice]
	for s := 0; s < totalSecs; s++ {
		t.Add(secondLabel(s+1), dr.nf1[s], dr.nf2[s], nr.nf1[s], nr.nf2[s])
	}
	return &Result{Tables: []*Table{t}}
}

// diversityCosts returns the paper's cost ratios 1:2:5:20:40:60 over a
// 500-cycle base, truncated to the given diversity level.
func diversityCosts(level int) []nfvnice.Cycles {
	ratios := []nfvnice.Cycles{1, 2, 5, 20, 40, 60}
	out := make([]nfvnice.Cycles, level)
	for i := 0; i < level; i++ {
		out[i] = 500 * ratios[i]
	}
	return out
}

// runDiversity runs one fairness configuration and returns per-flow
// throughputs (Mpps) and per-NF CPU shares (%).
func runDiversity(mode nfvnice.Mode, level int, d Durations) (tputs, cpus []float64) {
	costs := diversityCosts(level)
	loads := make([]nfvnice.Rate, level)
	for i := range loads {
		loads[i] = 1.1e6 // equal arrival rate per flow, overloading the core
	}
	p, chains := parallelNFs(nfvnice.SchedNormal, mode, costs, loads)
	s := measure(p, d)
	m := p.NFMetricsSince(s)
	for i := 0; i < level; i++ {
		tputs = append(tputs, mpps(p.ChainDeliveredSince(s, chains[i])))
		cpus = append(cpus, m[i].CPUShare*100)
	}
	return tputs, cpus
}

// Fig15b reproduces Figure 15b: Jain's fairness index over flow throughputs
// as NF cost diversity grows from 1 to 6. The default scheduler collapses
// toward 0.6; NFVnice stays at ~1.0.
func Fig15b(d Durations) *Result {
	t := &Table{
		ID:      "fig15b",
		Title:   "Jain's fairness index of per-flow throughput vs diversity level",
		Columns: []string{"diversity", "Default (NORMAL)", "NFVnice"},
	}
	for level := 1; level <= 6; level++ {
		var row []float64
		for _, mode := range []nfvnice.Mode{nfvnice.ModeDefault, nfvnice.ModeNFVnice} {
			tputs, _ := runDiversity(mode, level, d)
			row = append(row, stats.Jain(tputs))
		}
		t.Add(fmt.Sprintf("%d", level), row...)
	}
	return &Result{Tables: []*Table{t}}
}

// Fig15c reproduces Figure 15c: at diversity 6, per-NF CPU share and
// per-flow throughput. NFVnice gives the lightest NF ~1% and the heaviest
// ~46% of the CPU, equalizing flow throughputs; NORMAL splits CPU evenly and
// skews throughput ~15:1.
func Fig15c(d Durations) *Result {
	t := &Table{
		ID:    "fig15c",
		Title: "Diversity 6: CPU share (%) and throughput (Mpps) per NF",
		Columns: []string{"NF",
			"Default CPU %", "Default Mpps",
			"NFVnice CPU %", "NFVnice Mpps"},
	}
	dt, dc := runDiversity(nfvnice.ModeDefault, 6, d)
	nt, nc := runDiversity(nfvnice.ModeNFVnice, 6, d)
	for i := 0; i < 6; i++ {
		t.Add(nfName(i), dc[i], dt[i], nc[i], nt[i])
	}
	return &Result{Tables: []*Table{t}}
}
