package exp

import (
	"math/rand"

	"nfvnice"
)

// Fig10 reproduces Figure 10: the Fig 7 chain but every packet draws a cost
// of 120, 270 or 550 cycles independently at each NF (9 total-cost variants
// per packet). Cost estimation gets noisy, so cgroup weights degrade while
// pure backpressure stays robust.
func Fig10(d Durations) *Result {
	t := &Table{
		ID:      "fig10",
		Title:   "3-NF chain, variable per-packet costs (120/270/550 drawn per NF): throughput (Mpps)",
		Columns: []string{"mode", "NORMAL", "BATCH", "RR(1ms)", "RR(100ms)"},
	}
	for _, mode := range nfvnice.AllModes() {
		row := make([]float64, 0, 4)
		for _, sched := range nfvnice.AllSchedPolicies() {
			p := nfvnice.NewPlatform(nfvnice.DefaultConfig(sched, mode))
			core := p.AddCore()
			ids := make([]int, 3)
			for i := 0; i < 3; i++ {
				ids[i] = p.AddNF(nfName(i), nfvnice.ClassCost(120, 270, 550), core)
			}
			ch := p.AddChain("chain", ids...)
			f := nfvnice.UDPFlow(0, 64)
			p.MapFlow(f, ch)
			g := p.AddCBR(f, nfvnice.LineRate10G(64))
			// Each packet carries a class the NFs interpret; drawing it
			// per packet at the generator keeps runs deterministic.
			g.CostClass = func(rng *rand.Rand) int { return rng.Intn(3) }
			s := measure(p, d)
			row = append(row, mpps(p.ChainDeliveredSince(s, ch)))
		}
		t.Add(mode.String(), row...)
	}
	return &Result{Tables: []*Table{t}}
}

// Fig11 reproduces Figure 11: all six orderings of the Low/Med/High chain on
// one core, Default vs NFVnice under each scheduler. The bottleneck's
// position interacts catastrophically with coarse RR slices ("fast producer,
// slow consumer"); NFVnice recovers every case.
func Fig11(d Durations) *Result {
	t := &Table{
		ID:    "fig11",
		Title: "Chain orderings of {Low 120, Med 270, High 550} on one core: throughput (Mpps)",
		Columns: []string{"order",
			"NORMAL Def", "NORMAL NFV",
			"BATCH Def", "BATCH NFV",
			"RR(1ms) Def", "RR(1ms) NFV",
			"RR(100ms) Def", "RR(100ms) NFV"},
	}
	type perm struct {
		name  string
		costs []nfvnice.Cycles
	}
	perms := []perm{
		{"Low-Med-High", []nfvnice.Cycles{120, 270, 550}},
		{"Low-High-Med", []nfvnice.Cycles{120, 550, 270}},
		{"Med-Low-High", []nfvnice.Cycles{270, 120, 550}},
		{"Med-High-Low", []nfvnice.Cycles{270, 550, 120}},
		{"High-Low-Med", []nfvnice.Cycles{550, 120, 270}},
		{"High-Med-Low", []nfvnice.Cycles{550, 270, 120}},
	}
	for _, pm := range perms {
		row := make([]float64, 0, 8)
		for _, sched := range nfvnice.AllSchedPolicies() {
			for _, mode := range []nfvnice.Mode{nfvnice.ModeDefault, nfvnice.ModeNFVnice} {
				p, ch := singleChain(sched, mode, pm.costs, nfvnice.LineRate10G(64))
				s := measure(p, d)
				row = append(row, mpps(p.ChainDeliveredSince(s, ch)))
			}
		}
		t.Add(pm.name, row...)
	}
	return &Result{Tables: []*Table{t}}
}

// Fig12 reproduces Figure 12: three homogeneous NFs (270 cycles), workload
// "types" 1–6 where type k offers k equal-rate flows, each traversing the
// three NFs in a random (per-flow) order, so bottlenecks differ per flow.
func Fig12(d Durations) *Result {
	t := &Table{
		ID:    "fig12",
		Title: "Aggregate throughput (Mpps), k flows each with a random NF order",
		Columns: []string{"type",
			"NORMAL Def", "BATCH Def", "RR(1ms) Def", "RR(100ms) Def",
			"NORMAL NFV", "BATCH NFV", "RR(1ms) NFV", "RR(100ms) NFV"},
	}
	lineRate := nfvnice.LineRate10G(64)
	for k := 1; k <= 6; k++ {
		rowDef := make([]float64, 0, 4)
		rowNfv := make([]float64, 0, 4)
		for _, mode := range []nfvnice.Mode{nfvnice.ModeDefault, nfvnice.ModeNFVnice} {
			for _, sched := range nfvnice.AllSchedPolicies() {
				p := nfvnice.NewPlatform(nfvnice.DefaultConfig(sched, mode))
				core := p.AddCore()
				ids := make([]int, 3)
				for i := range ids {
					ids[i] = p.AddNF(nfName(i), nfvnice.FixedCost(270), core)
				}
				// Deterministic random orders per flow, fixed across
				// schedulers/modes so the comparison is paired.
				rng := rand.New(rand.NewSource(int64(1000 + k)))
				chains := make([]int, k)
				var total float64
				for fi := 0; fi < k; fi++ {
					order := rng.Perm(3)
					chains[fi] = p.AddChain("flow", ids[order[0]], ids[order[1]], ids[order[2]])
					f := nfvnice.UDPFlow(fi, 64)
					p.MapFlow(f, chains[fi])
					p.AddCBR(f, lineRate/nfvnice.Rate(k))
				}
				s := measure(p, d)
				for _, ch := range chains {
					total += mpps(p.ChainDeliveredSince(s, ch))
				}
				if mode == nfvnice.ModeDefault {
					rowDef = append(rowDef, total)
				} else {
					rowNfv = append(rowNfv, total)
				}
			}
		}
		t.Add(typeName(k), append(rowDef, rowNfv...)...)
	}
	return &Result{Tables: []*Table{t}}
}

func typeName(k int) string {
	return "Type " + string(rune('0'+k))
}
