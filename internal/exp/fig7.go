package exp

import (
	"nfvnice"
)

// fig7Costs is the §4.2.1 chain: Low(120) → Med(270) → High(550) cycles.
func fig7Costs() []nfvnice.Cycles { return []nfvnice.Cycles{120, 270, 550} }

// Fig7 reproduces Figure 7: throughput of the 3-NF single-core chain for
// each feature mode (Default / CGroup / Only-BKPR / NFVnice) under each of
// the four kernel schedulers, at 64-byte line rate.
func Fig7(d Durations) *Result {
	t := &Table{
		ID:      "fig7",
		Title:   "3-NF chain (120/270/550 cyc) on one core, 64B line rate: throughput (Mpps)",
		Columns: []string{"mode", "NORMAL", "BATCH", "RR(1ms)", "RR(100ms)"},
	}
	for _, mode := range nfvnice.AllModes() {
		row := make([]float64, 0, 4)
		for _, sched := range nfvnice.AllSchedPolicies() {
			p, ch := singleChain(sched, mode, fig7Costs(), nfvnice.LineRate10G(64))
			s := measure(p, d)
			row = append(row, mpps(p.ChainDeliveredSince(s, ch)))
		}
		t.Add(mode.String(), row...)
	}
	return &Result{Tables: []*Table{t}}
}

// Table3 reproduces Table 3: packets dropped per second at the upstream NFs
// (NF1, NF2) after processing — pure wasted work — default vs NFVnice for
// each scheduler.
func Table3(d Durations) *Result {
	t := &Table{
		ID:    "table3",
		Title: "Packet drop rate per second after processing (wasted work)",
		Columns: []string{"NF",
			"NORMAL Default", "NORMAL NFVnice",
			"BATCH Default", "BATCH NFVnice",
			"RR(1ms) Default", "RR(1ms) NFVnice",
			"RR(100ms) Default", "RR(100ms) NFVnice"},
		Fmt: "%.0f",
	}
	rows := [2][]float64{}
	for _, sched := range nfvnice.AllSchedPolicies() {
		for _, mode := range []nfvnice.Mode{nfvnice.ModeDefault, nfvnice.ModeNFVnice} {
			p, _ := singleChain(sched, mode, fig7Costs(), nfvnice.LineRate10G(64))
			s := measure(p, d)
			m := p.NFMetricsSince(s)
			for i := 0; i < 2; i++ {
				rows[i] = append(rows[i], float64(m[i].WastedDropsPps))
			}
		}
	}
	t.Add("NF1", rows[0]...)
	t.Add("NF2", rows[1]...)
	return &Result{Tables: []*Table{t}}
}

// Table4 reproduces Table 4: average scheduling latency (runnable → running,
// ms) and cumulative runtime (ms) per NF, default vs NFVnice, per scheduler.
func Table4(d Durations) *Result {
	delay := &Table{
		ID:    "table4-delay",
		Title: "Average scheduling delay (ms)",
		Columns: []string{"NF",
			"NORMAL Default", "NORMAL NFVnice",
			"BATCH Default", "BATCH NFVnice",
			"RR(1ms) Default", "RR(1ms) NFVnice",
			"RR(100ms) Default", "RR(100ms) NFVnice"},
		Fmt: "%.3f",
	}
	runtime := &Table{
		ID:      "table4-runtime",
		Title:   "Cumulative runtime (ms)",
		Columns: append([]string(nil), delay.Columns...),
		Fmt:     "%.1f",
	}
	delayRows := [3][]float64{}
	rtRows := [3][]float64{}
	for _, sched := range nfvnice.AllSchedPolicies() {
		for _, mode := range []nfvnice.Mode{nfvnice.ModeDefault, nfvnice.ModeNFVnice} {
			p, _ := singleChain(sched, mode, fig7Costs(), nfvnice.LineRate10G(64))
			s := measure(p, d)
			m := p.NFMetricsSince(s)
			for i := 0; i < 3; i++ {
				delayRows[i] = append(delayRows[i], m[i].AvgSchedDelayMs)
				rtRows[i] = append(rtRows[i], m[i].RuntimeMs)
			}
		}
	}
	for i := 0; i < 3; i++ {
		delay.Add(nfName(i), delayRows[i]...)
		runtime.Add(nfName(i), rtRows[i]...)
	}
	return &Result{Tables: []*Table{delay, runtime}}
}
