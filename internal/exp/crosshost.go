package exp

import (
	"nfvnice"
	"nfvnice/internal/mgr"
	"nfvnice/internal/traffic"
)

// CrossHost is the §3.3 extension in full: a service chain spread across
// two hosts sharing one simulated timeline. The sender's TCP traverses
// host A (firewall + NAT, lightly loaded), a 50 µs link, and host B, whose
// WAN-optimizer NF is the end-to-end bottleneck. Host B's backpressure
// cannot reach the remote sender — only ECN can. With marking enabled the
// flow converges on B's capacity with no loss; without it, B's ring must
// overflow to say "slow down".
func CrossHostDebug(d Durations) *Result { return crossHost(d, true) }

// CrossHost runs the two-host chain experiment.
func CrossHost(d Durations) *Result { return crossHost(d, false) }

func crossHost(d Durations, debug bool) *Result {
	t := &Table{
		ID:      "crosshost",
		Title:   "Two-host chain (A: fw→nat, 50µs link, B: wan-opt bottleneck): TCP behaviour",
		Columns: []string{"config", "goodput Mbps", "losses/s", "marks/s", "p50 B-latency µs"},
		Fmt:     "%.1f",
	}
	for _, ecnOn := range []bool{false, true} {
		// Host A: ample capacity, full NFVnice.
		cfgA := nfvnice.DefaultConfig(nfvnice.SchedNormal, nfvnice.ModeNFVnice)
		hostA := nfvnice.NewPlatform(cfgA)
		coreA := hostA.AddCore()
		fw := hostA.AddNF("fw", nfvnice.FixedCost(480), coreA)
		nat := hostA.AddNF("nat", nfvnice.FixedCost(1080), coreA)
		chainA := hostA.AddChain("a", fw, nat)

		// Host B: the bottleneck, small rings, ECN per configuration.
		cfgB := nfvnice.DefaultConfig(nfvnice.SchedNormal, nfvnice.ModeNFVnice)
		if !ecnOn {
			f := nfvnice.ModeNFVnice.Features()
			f.ECN = false
			cfgB.FeatureOverride = &f
		}
		cfgB.NFParams.RingSize = 256
		mp := mgr.DefaultParams(cfgB.Mode.Features())
		mp.ECNThreshold = 128
		cfgB.MgrParams = &mp
		hostB := nfvnice.NewPlatformOn(cfgB, hostA.Eng)
		wan := hostB.AddNF("wan-opt", nfvnice.FixedCost(14700), hostB.AddCore())
		chainB := hostB.AddChain("b", wan)

		f := nfvnice.TCPFlow(0, 1470)
		hostA.MapFlow(f, chainA)
		hostB.MapFlow(f, chainB)

		tcp := hostA.AddTCP(f, traffic.DefaultTCPParams())
		// The link takes over host A's sink; the TCP sender sees only
		// end-to-end events.
		link := nfvnice.ConnectHosts(hostA, hostB, f, nfvnice.Cycles(50*2600))
		link.Downstream = tcp

		hostB.Start()
		hostA.Start()
		tcp.Start()

		warm := d.Warm * 10
		meas := d.Meas * 10
		hostA.Run(warm)
		baseBytes := tcp.DeliveredBytes.Total()
		baseLoss := tcp.Losses.Total()
		baseMarks := tcp.ECNEchoes.Total()
		hostA.Run(warm + meas)
		secs := meas.Seconds()
		name := "loss-based (ECN off)"
		if ecnOn {
			name = "ECN across hosts"
		}
		t.Add(name,
			float64(tcp.DeliveredBytes.Total()-baseBytes)*8/1e6/secs,
			float64(tcp.Losses.Total()-baseLoss)/secs,
			float64(tcp.ECNEchoes.Total()-baseMarks)/secs,
			hostB.LatencyQuantile(0.5))
		if debug {
			println("dbg:", name, "sent", tcp.Sent.Total(), "fwd", link.Forwarded,
				"dropB", link.DroppedAtB, "losses", tcp.Losses.Total(),
				"timeouts", tcp.Timeouts.Total(), "cwnd", int(tcp.Cwnd()), "inflight", tcp.Inflight())
		}
	}
	return &Result{Tables: []*Table{t}}
}
