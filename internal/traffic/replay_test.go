package traffic

import (
	"testing"
	"time"

	"nfvnice/internal/flowtable"
	"nfvnice/internal/mgr"
	"nfvnice/internal/pcap"
	"nfvnice/internal/proto"
	"nfvnice/internal/simtime"
)

func makeTrace(n int, gap time.Duration) []pcap.Packet {
	t0 := time.Unix(1700000000, 0)
	var out []pcap.Packet
	for i := 0; i < n; i++ {
		flow := uint16(1000 + i%4)
		frame := proto.BuildUDP(
			proto.MAC{2, 0, 0, 0, 0, 1}, proto.MAC{2, 0, 0, 0, 0, 2},
			proto.Addr4(10, 0, 0, byte(1+i%4)), proto.Addr4(10, 9, 9, 9),
			flow, 80, []byte("payload"))
		out = append(out, pcap.Packet{Time: t0.Add(time.Duration(i) * gap), Data: frame, Orig: len(frame)})
	}
	return out
}

func TestReplayInjectsWithTiming(t *testing.T) {
	eng, m, _ := testPlatform(t, mgr.FeatureDefault())
	// Route everything to chain 0 via a wildcard rule.
	m.Table.Install(flowtable.Rule{ChainID: 0})

	trace := makeTrace(100, time.Millisecond)
	r := NewReplay(eng, m, trace, 0)
	r.Start()
	// 100 packets, 1 ms apart: at t=50ms about half are injected.
	eng.RunUntil(50*simtime.Millisecond + simtime.Microsecond)
	mid := r.Offered.Total()
	if mid < 45 || mid > 56 {
		t.Fatalf("at 50ms offered %d, want ~51 (timing preserved)", mid)
	}
	eng.RunUntil(200 * simtime.Millisecond)
	if r.Offered.Total() != 100 {
		t.Fatalf("offered %d, want 100", r.Offered.Total())
	}
	if r.Accepted.Total() != 100 {
		t.Fatalf("accepted %d (platform should keep up)", r.Accepted.Total())
	}
	if r.Flows() != 4 {
		t.Fatalf("flows = %d, want 4", r.Flows())
	}
}

func TestReplaySpeedup(t *testing.T) {
	eng, m, _ := testPlatform(t, mgr.FeatureDefault())
	m.Table.Install(flowtable.Rule{ChainID: 0})
	trace := makeTrace(100, time.Millisecond)
	r := NewReplay(eng, m, trace, 0)
	r.Speedup = 10 // 99 ms of trace in ~9.9 ms
	r.Start()
	eng.RunUntil(12 * simtime.Millisecond)
	if r.Offered.Total() != 100 {
		t.Fatalf("sped-up replay offered %d of 100 by 12ms", r.Offered.Total())
	}
}

func TestReplayLoop(t *testing.T) {
	eng, m, _ := testPlatform(t, mgr.FeatureDefault())
	m.Table.Install(flowtable.Rule{ChainID: 0})
	trace := makeTrace(10, 100*time.Microsecond)
	r := NewReplay(eng, m, trace, 0)
	r.Loop = true
	r.Start()
	eng.RunUntil(10 * simtime.Millisecond)
	r.Stop()
	if r.Offered.Total() < 30 {
		t.Fatalf("looped replay offered only %d", r.Offered.Total())
	}
}

func TestReplayPrescan(t *testing.T) {
	eng, m, _ := testPlatform(t, mgr.FeatureDefault())
	trace := makeTrace(20, time.Microsecond)
	r := NewReplay(eng, m, trace, 7)
	keys := r.Prescan()
	if len(keys) != 4 || r.Flows() != 4 {
		t.Fatalf("prescan found %d flows, want 4", len(keys))
	}
	// Ids start at the seed.
	if got := r.flowIDs[keys[0]]; got != 7 {
		t.Fatalf("first flow id = %d, want 7", got)
	}
	_ = eng
}

func TestReplayUndecodable(t *testing.T) {
	eng, m, _ := testPlatform(t, mgr.FeatureDefault())
	m.Table.Install(flowtable.Rule{ChainID: 0})
	trace := []pcap.Packet{
		{Time: time.Unix(0, 0), Data: []byte{1, 2, 3}, Orig: 3},
	}
	r := NewReplay(eng, m, trace, 0)
	r.Start()
	eng.RunUntil(simtime.Millisecond)
	if r.Undecodable.Total() != 1 {
		t.Fatalf("undecodable = %d", r.Undecodable.Total())
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	eng, m, _ := testPlatform(t, mgr.FeatureDefault())
	r := NewReplay(eng, m, nil, 0)
	r.Start() // must not panic or schedule anything
	eng.RunUntil(simtime.Millisecond)
	if r.Offered.Total() != 0 {
		t.Fatal("empty trace injected packets")
	}
}
