// Package traffic provides the workload generators the paper's testbed
// tools supply: MoonGen/Pktgen-style constant-bit-rate UDP at line rate
// (64-byte packets, multiple flows), Poisson arrivals, and an iperf3-style
// TCP flow with Reno congestion control and ECN response for the
// performance-isolation experiment.
package traffic

import (
	"math/rand"

	"nfvnice/internal/eventsim"
	"nfvnice/internal/mgr"
	"nfvnice/internal/packet"
	"nfvnice/internal/simtime"
	"nfvnice/internal/stats"
)

// Flow describes one generated flow.
type Flow struct {
	ID   int
	Key  packet.FlowKey
	Size int // frame bytes
}

// FlowN builds a distinct UDP flow key for flow id i.
func FlowN(i int, size int) Flow {
	return Flow{
		ID:   i,
		Key:  packet.FlowKey{SrcIP: 0x0a000000 + uint32(i+1), DstIP: 0x0b000001, SrcPort: uint16(1000 + i), DstPort: 9, Proto: packet.UDP},
		Size: size,
	}
}

// TCPFlowN builds a distinct TCP flow key.
func TCPFlowN(i int, size int) Flow {
	return Flow{
		ID:   i,
		Key:  packet.FlowKey{SrcIP: 0x0a000000 + uint32(i+1), DstIP: 0x0b000001, SrcPort: uint16(5000 + i), DstPort: 5201, Proto: packet.TCP},
		Size: size,
	}
}

// NIC aggregates all constant-rate generators behind one injection tick
// that interleaves due packets across flows round-robin, the way frames of
// concurrent flows arrive interleaved on a real link. Without this, whole
// bursts of one flow would win every free ring slot under overload.
type NIC struct {
	eng      *eventsim.Engine
	interval simtime.Cycles
	gens     []*CBR
	started  bool
}

// NewNIC returns a NIC ticking every 10 µs (≤ ~150-packet aggregate bursts
// at 10G line rate).
func NewNIC(eng *eventsim.Engine) *NIC {
	return &NIC{eng: eng, interval: 10 * simtime.Microsecond}
}

// Start arms the injection tick (idempotent).
func (n *NIC) Start() {
	if n.started {
		return
	}
	n.started = true
	n.eng.Every(n.eng.Now(), n.interval, n.tick)
}

func (n *NIC) tick() {
	now := n.eng.Now()
	remaining := 0
	for _, g := range n.gens {
		remaining += g.due(now)
	}
	// Round-robin one packet per flow until all credits are spent.
	for remaining > 0 {
		for _, g := range n.gens {
			if g.pending > 0 {
				g.emit()
				remaining--
			}
		}
	}
}

// CBR is a constant-rate UDP generator attached to a NIC. Credit accounting
// is integer-exact: the long-run rate matches the configured rate regardless
// of the NIC tick.
type CBR struct {
	m *mgr.Manager

	Flow Flow
	// CostClass, when non-nil, assigns each packet's cost class (Fig 10's
	// per-packet variable costs); deterministic from the seeded RNG.
	CostClass func(rng *rand.Rand) int

	nic     *NIC
	rate    simtime.Rate
	sent    uint64
	pending int
	startAt simtime.Cycles
	rng     *rand.Rand
	stopped bool

	// Offered and Accepted count injection attempts and successes.
	Offered  stats.Meter
	Accepted stats.Meter
}

// NewCBR returns a generator injecting flow packets at rate through the NIC.
func NewCBR(nic *NIC, m *mgr.Manager, flow Flow, rate simtime.Rate, seed int64) *CBR {
	g := &CBR{
		nic:  nic,
		m:    m,
		Flow: flow,
		rate: rate,
		rng:  rand.New(rand.NewSource(seed)),
	}
	nic.gens = append(nic.gens, g)
	return g
}

// Start begins injection at the engine's current time.
func (g *CBR) Start() {
	g.startAt = g.nic.eng.Now()
	g.sent = 0
	g.nic.Start()
}

// Stop halts injection.
func (g *CBR) Stop() { g.stopped = true }

// Restart resumes injection after Stop, restarting credit accounting so no
// burst of "missed" packets is emitted.
func (g *CBR) Restart() {
	g.stopped = false
	g.startAt = g.nic.eng.Now()
	g.sent = 0
}

// SetRate changes the offered rate; credit accounting restarts so the new
// rate applies cleanly from now.
func (g *CBR) SetRate(r simtime.Rate) {
	g.rate = r
	g.startAt = g.nic.eng.Now()
	g.sent = 0
}

// due computes how many packets this generator owes as of now and stages
// them for interleaved emission.
func (g *CBR) due(now simtime.Cycles) int {
	if g.stopped || g.rate <= 0 {
		g.pending = 0
		return 0
	}
	target := uint64(float64(now-g.startAt) / float64(simtime.Second) * float64(g.rate))
	g.pending = int(target - g.sent)
	return g.pending
}

func (g *CBR) emit() {
	g.pending--
	g.sent++
	g.Offered.Inc()
	class := 0
	if g.CostClass != nil {
		class = g.CostClass(g.rng)
	}
	if ok, _ := g.m.Inject(g.Flow.Key, g.Flow.ID, g.Flow.Size, packet.NotECT, class); ok {
		g.Accepted.Inc()
	}
}

// Poisson is a Poisson-arrival UDP generator (exponential gaps), used to
// check NFVnice's robustness beyond CBR workloads.
type Poisson struct {
	eng *eventsim.Engine
	m   *mgr.Manager

	Flow Flow
	rng  *rand.Rand
	mean simtime.Cycles

	Offered  stats.Meter
	Accepted stats.Meter
	stopped  bool
}

// NewPoisson returns a Poisson generator with the given mean rate.
func NewPoisson(eng *eventsim.Engine, m *mgr.Manager, flow Flow, rate simtime.Rate, seed int64) *Poisson {
	if rate <= 0 {
		panic("traffic: poisson rate must be positive")
	}
	return &Poisson{
		eng:  eng,
		m:    m,
		Flow: flow,
		rng:  rand.New(rand.NewSource(seed)),
		mean: rate.Interval(),
	}
}

// Start begins arrivals.
func (p *Poisson) Start() { p.schedule() }

// Stop halts arrivals.
func (p *Poisson) Stop() { p.stopped = true }

func (p *Poisson) schedule() {
	gap := simtime.Cycles(p.rng.ExpFloat64() * float64(p.mean))
	if gap == 0 {
		gap = 1
	}
	p.eng.After(gap, func() {
		if p.stopped {
			return
		}
		p.Offered.Inc()
		if ok, _ := p.m.Inject(p.Flow.Key, p.Flow.ID, p.Flow.Size, packet.NotECT, 0); ok {
			p.Accepted.Inc()
		}
		p.schedule()
	})
}
