package traffic

import (
	"time"

	"nfvnice/internal/eventsim"
	"nfvnice/internal/mgr"
	"nfvnice/internal/packet"
	"nfvnice/internal/pcap"
	"nfvnice/internal/proto"
	"nfvnice/internal/simtime"
	"nfvnice/internal/stats"
)

// Replay injects a captured packet trace into the simulated platform,
// preserving inter-arrival timing (optionally scaled). Each 5-tuple gets a
// dense FlowID; routing still goes through the manager's flow table, so the
// trace's flows must be mapped to chains (exactly or via wildcard rules)
// before Start.
type Replay struct {
	eng *eventsim.Engine
	m   *mgr.Manager

	pkts []pcap.Packet
	// Speedup divides inter-arrival gaps (2.0 = replay twice as fast).
	Speedup float64
	// Loop repeats the trace when it ends.
	Loop bool

	flowIDs map[packet.FlowKey]int
	nextID  int

	// Offered, Accepted, and Undecodable count injection outcomes.
	Offered     stats.Meter
	Accepted    stats.Meter
	Undecodable stats.Meter

	idx     int
	base    simtime.Cycles
	t0      time.Time
	stopped bool
}

// NewReplay builds a replayer over a decoded capture. firstFlowID seeds the
// dense flow-id assignment so replays can coexist with other generators.
func NewReplay(eng *eventsim.Engine, m *mgr.Manager, pkts []pcap.Packet, firstFlowID int) *Replay {
	return &Replay{
		eng:     eng,
		m:       m,
		pkts:    pkts,
		Speedup: 1,
		flowIDs: make(map[packet.FlowKey]int),
		nextID:  firstFlowID,
	}
}

// Flows reports the distinct 5-tuples seen so far (populated as the replay
// progresses; call Prescan to populate eagerly).
func (r *Replay) Flows() int { return len(r.flowIDs) }

// Prescan decodes the whole trace up front, assigning flow ids without
// injecting, so callers can enumerate flows before Start.
func (r *Replay) Prescan() []packet.FlowKey {
	var keys []packet.FlowKey
	for _, p := range r.pkts {
		k, ok := keyOf(p.Data)
		if !ok {
			continue
		}
		if _, seen := r.flowIDs[k]; !seen {
			r.flowIDs[k] = r.nextID
			r.nextID++
			keys = append(keys, k)
		}
	}
	return keys
}

// keyOf extracts the 5-tuple from a frame.
func keyOf(frame []byte) (packet.FlowKey, bool) {
	f, err := proto.Decode(frame)
	if err != nil || !f.HasIP {
		return packet.FlowKey{}, false
	}
	k := packet.FlowKey{
		SrcIP: uint32(f.IP.Src),
		DstIP: uint32(f.IP.Dst),
	}
	switch {
	case f.HasUDP:
		k.Proto = packet.UDP
		k.SrcPort, k.DstPort = f.UDP.SrcPort, f.UDP.DstPort
	case f.HasTCP:
		k.Proto = packet.TCP
		k.SrcPort, k.DstPort = f.TCP.SrcPort, f.TCP.DstPort
	default:
		k.Proto = packet.Proto(f.IP.Protocol)
	}
	return k, true
}

// Start schedules the replay beginning at the engine's current time.
func (r *Replay) Start() {
	if len(r.pkts) == 0 {
		return
	}
	r.base = r.eng.Now()
	r.t0 = r.pkts[0].Time
	r.idx = 0
	r.scheduleNext()
}

// Stop halts the replay.
func (r *Replay) Stop() { r.stopped = true }

func (r *Replay) scheduleNext() {
	if r.stopped {
		return
	}
	if r.idx >= len(r.pkts) {
		if !r.Loop {
			return
		}
		// Restart the clock base at "now" for the next lap.
		r.base = r.eng.Now()
		r.t0 = r.pkts[0].Time
		r.idx = 0
	}
	p := r.pkts[r.idx]
	gap := p.Time.Sub(r.t0)
	if r.Speedup > 0 && r.Speedup != 1 {
		gap = time.Duration(float64(gap) / r.Speedup)
	}
	at := r.base + simtime.FromDuration(gap)
	if at < r.eng.Now() {
		at = r.eng.Now()
	}
	r.eng.At(at, func() {
		r.injectCurrent()
		r.idx++
		r.scheduleNext()
	})
}

func (r *Replay) injectCurrent() {
	p := r.pkts[r.idx]
	k, ok := keyOf(p.Data)
	if !ok {
		r.Undecodable.Inc()
		return
	}
	id, seen := r.flowIDs[k]
	if !seen {
		id = r.nextID
		r.nextID++
		r.flowIDs[k] = id
	}
	ecn := packet.NotECT
	if f, err := proto.Decode(p.Data); err == nil && f.HasIP && f.IP.ECN() != 0 {
		ecn = packet.ECN(f.IP.ECN())
	}
	r.Offered.Inc()
	if ok, _ := r.m.Inject(k, id, p.Orig, ecn, 0); ok {
		r.Accepted.Inc()
	}
}
