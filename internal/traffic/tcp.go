package traffic

import (
	"nfvnice/internal/eventsim"
	"nfvnice/internal/mgr"
	"nfvnice/internal/packet"
	"nfvnice/internal/simtime"
	"nfvnice/internal/stats"
)

// TCPParams tune the Reno model.
type TCPParams struct {
	// BaseRTT is the network round trip excluding platform queueing.
	BaseRTT simtime.Cycles
	// InitCwnd and MaxCwnd bound the congestion window (packets).
	InitCwnd, MaxCwnd float64
	// RTO is the retransmission timeout (Linux floor is 200 ms; we use a
	// laboratory-scale 10 ms so the simulated minutes stay affordable —
	// it only makes the default baseline *less* catastrophic, i.e. the
	// comparison conservative).
	RTO simtime.Cycles
}

// DefaultTCPParams returns parameters for a back-to-back 10G testbed.
func DefaultTCPParams() TCPParams {
	return TCPParams{
		BaseRTT:  200 * simtime.Microsecond,
		InitCwnd: 10,
		MaxCwnd:  4096,
		RTO:      10 * simtime.Millisecond,
	}
}

// TCPFlow is an iperf3-style bulk TCP sender with Reno congestion control:
// slow start, AIMD congestion avoidance, fast-recovery-style halving on
// loss, ECN-Echo response (RFC 3168), and an RTO fallback to a window of
// one. It observes its packets' fate through the manager's Sink interface.
type TCPFlow struct {
	eng    *eventsim.Engine
	m      *mgr.Manager
	params TCPParams

	Flow Flow

	cwnd     float64
	ssthresh float64
	inflight int

	lastProgress simtime.Cycles
	lastCut      simtime.Cycles // last multiplicative decrease (once per RTT)
	injecting    bool
	retryPending bool

	// DeliveredBytes counts acknowledged payload; GoodputSeries records
	// per-sample Mbps when the experiment samples it.
	DeliveredBytes stats.Meter
	Sent           stats.Meter
	Losses         stats.Meter
	ECNEchoes      stats.Meter
	Timeouts       stats.Meter

	started bool
	stopped bool
}

// NewTCPFlow returns a bulk sender for the given flow.
func NewTCPFlow(eng *eventsim.Engine, m *mgr.Manager, flow Flow, params TCPParams) *TCPFlow {
	t := &TCPFlow{
		eng:      eng,
		m:        m,
		params:   params,
		Flow:     flow,
		cwnd:     params.InitCwnd,
		ssthresh: params.MaxCwnd,
	}
	m.RegisterSink(flow.ID, t)
	return t
}

// Start begins transmission and arms the RTO scan.
func (t *TCPFlow) Start() {
	t.started = true
	t.lastProgress = t.eng.Now()
	t.trySend()
	t.eng.Every(t.eng.Now()+t.params.RTO, t.params.RTO/2, t.rtoScan)
}

// Stop halts the sender.
func (t *TCPFlow) Stop() { t.stopped = true }

// Cwnd reports the current congestion window (packets), for metrics.
func (t *TCPFlow) Cwnd() float64 { return t.cwnd }

func (t *TCPFlow) trySend() {
	if !t.started || t.stopped {
		return
	}
	for float64(t.inflight) < t.cwnd {
		t.inflight++
		t.Sent.Inc()
		t.injecting = true
		ok, _ := t.m.Inject(t.Flow.Key, t.Flow.ID, t.Flow.Size, packet.ECT, 0)
		t.injecting = false
		if !ok {
			// The synchronous Dropped callback already undid inflight and
			// cut the window; pace the next attempt instead of spinning.
			t.scheduleRetry()
			return
		}
	}
}

// Delivered implements mgr.Sink: the packet exited the chain; the ACK
// returns after the network round trip. Injection into the platform is
// instantaneous in the simulation, so the whole BaseRTT is charged on the
// ACK path — end-to-end RTT is then BaseRTT plus platform queueing, as on
// the testbed.
func (t *TCPFlow) Delivered(now simtime.Cycles, pkt *packet.Packet) {
	ce := pkt.ECN == packet.CE
	size := pkt.Size
	t.eng.After(t.params.BaseRTT, func() { t.onAck(size, ce) })
}

func (t *TCPFlow) onAck(size int, ce bool) {
	if t.stopped {
		return
	}
	now := t.eng.Now()
	if t.inflight > 0 {
		t.inflight--
	}
	t.lastProgress = now
	t.DeliveredBytes.Add(uint64(size))
	if ce {
		t.ECNEchoes.Inc()
		t.cutWindow(now)
	} else if t.cwnd < t.ssthresh {
		t.cwnd++ // slow start
	} else {
		t.cwnd += 1 / t.cwnd // congestion avoidance
	}
	if t.cwnd > t.params.MaxCwnd {
		t.cwnd = t.params.MaxCwnd
	}
	t.trySend()
}

// Dropped implements mgr.Sink: congestion loss anywhere in the platform.
//
// Synchronous rejections (the sender's own Inject bounced at the entry) are
// known immediately: undo the window slot and back off, coalescing retries
// so persistent rejection costs one timer, not one timer per attempt.
// Asynchronous drops (the packet died somewhere downstream) model triple-
// duplicate-ACK detection an RTT later; their handler population is bounded
// by the packets genuinely inside the platform.
func (t *TCPFlow) Dropped(now simtime.Cycles, pkt *packet.Packet, at mgr.DropPoint) {
	t.Losses.Inc()
	if t.injecting {
		if t.inflight > 0 {
			t.inflight--
		}
		t.cutWindow(now)
		return
	}
	// Loss detection takes about an RTT (triple duplicate ACK).
	t.eng.After(t.params.BaseRTT, func() {
		if t.stopped {
			return
		}
		if t.inflight > 0 {
			t.inflight--
		}
		t.cutWindow(t.eng.Now())
		// Fast recovery retransmits once per window, not once per lost
		// segment: a blast of N losses must not seed N self-sustaining
		// retransmit loops. ACK-clocked sends stay in onAck.
		t.scheduleRetry()
	})
}

// scheduleRetry arms a single paced re-send after persistent synchronous
// rejection; concurrent failures coalesce into one timer.
func (t *TCPFlow) scheduleRetry() {
	if t.retryPending {
		return
	}
	t.retryPending = true
	t.eng.After(t.params.BaseRTT, func() {
		t.retryPending = false
		t.trySend()
	})
}

// cutWindow halves cwnd at most once per RTT (Reno's per-window reaction).
func (t *TCPFlow) cutWindow(now simtime.Cycles) {
	if now-t.lastCut < t.params.BaseRTT {
		return
	}
	t.lastCut = now
	t.cwnd /= 2
	if t.cwnd < 1 {
		t.cwnd = 1
	}
	t.ssthresh = t.cwnd
}

// rtoScan fires the retransmission timeout when no ACK progress happened
// for a full RTO: window collapses to one and slow start restarts.
func (t *TCPFlow) rtoScan() {
	if t.stopped {
		return
	}
	now := t.eng.Now()
	if now-t.lastProgress < t.params.RTO {
		return
	}
	t.Timeouts.Inc()
	t.lastProgress = now
	t.ssthresh = t.cwnd / 2
	if t.ssthresh < 2 {
		t.ssthresh = 2
	}
	t.cwnd = 1
	// inflight is NOT reset: every injected packet eventually produces a
	// Delivered or Dropped callback in this platform, so the window
	// drains by itself. Zeroing it would model a retransmission storm
	// whose duplicates get counted as goodput.
	t.trySend()
}

// GoodputMbps converts a delivered-bytes snapshot into megabits per second.
func GoodputMbps(delivered *stats.Meter, now simtime.Cycles) float64 {
	return float64(delivered.Snapshot(now)) * 8 / 1e6
}

// UDPSink counts a UDP flow's delivered packets/bytes for per-flow
// throughput reporting (iperf3 server side).
type UDPSink struct {
	DeliveredPkts  stats.Meter
	DeliveredBytes stats.Meter
	DroppedPkts    stats.Meter
}

// Delivered implements mgr.Sink.
func (u *UDPSink) Delivered(now simtime.Cycles, pkt *packet.Packet) {
	u.DeliveredPkts.Inc()
	u.DeliveredBytes.Add(uint64(pkt.Size))
}

// Dropped implements mgr.Sink.
func (u *UDPSink) Dropped(now simtime.Cycles, pkt *packet.Packet, at mgr.DropPoint) {
	u.DroppedPkts.Inc()
}

// Inflight reports the sender's current outstanding-packet estimate.
func (t *TCPFlow) Inflight() int { return t.inflight }
