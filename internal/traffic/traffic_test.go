package traffic

import (
	"math"
	"testing"

	"nfvnice/internal/chain"
	"nfvnice/internal/cpusched"
	"nfvnice/internal/eventsim"
	"nfvnice/internal/mgr"
	"nfvnice/internal/nf"
	"nfvnice/internal/packet"
	"nfvnice/internal/simtime"
)

// testPlatform wires a single fast NF so generators have something to hit.
func testPlatform(t *testing.T, feats mgr.Features) (*eventsim.Engine, *mgr.Manager, *NIC) {
	t.Helper()
	eng := eventsim.New()
	pool := packet.NewPool(65536)
	reg := chain.NewRegistry()
	m := mgr.New(eng, pool, reg, mgr.DefaultParams(feats))
	core := cpusched.NewCore(0, eng, cpusched.NewCFSBatch(), cpusched.DefaultCoreParams())
	n := nf.New(0, "fwd", nf.FixedCost(100), nf.DefaultParams(), 1)
	core.AddTask(n.Task)
	m.AddNF(n)
	reg.MustAdd("c", 0)
	m.GrowChains(1)
	m.Start()
	return eng, m, NewNIC(eng)
}

func mapFlow(m *mgr.Manager, f Flow) {
	m.Table.InstallExact(f.Key, 0)
}

func TestCBRRateIsExact(t *testing.T) {
	eng, m, nic := testPlatform(t, mgr.FeatureDefault())
	f := FlowN(0, 64)
	mapFlow(m, f)
	g := NewCBR(nic, m, f, 1_000_000, 1)
	g.Start()
	eng.RunUntil(simtime.Second)
	// 1 Mpps for 1 s: within one NIC tick's worth of packets.
	if got := g.Offered.Total(); math.Abs(float64(got)-1e6) > 20 {
		t.Fatalf("offered = %d, want ~1e6", got)
	}
}

func TestCBRStopRestart(t *testing.T) {
	eng, m, nic := testPlatform(t, mgr.FeatureDefault())
	f := FlowN(0, 64)
	mapFlow(m, f)
	g := NewCBR(nic, m, f, 1_000_000, 1)
	g.Start()
	eng.RunUntil(100 * simtime.Millisecond)
	atStop := g.Offered.Total()
	g.Stop()
	eng.RunUntil(200 * simtime.Millisecond)
	if g.Offered.Total() != atStop {
		t.Fatal("generator emitted while stopped")
	}
	g.Restart()
	eng.RunUntil(300 * simtime.Millisecond)
	delta := g.Offered.Total() - atStop
	// ~100ms at 1Mpps = ~100k packets; no catch-up burst for the stopped
	// interval.
	if delta < 95_000 || delta > 105_000 {
		t.Fatalf("post-restart emitted %d, want ~100k (no catch-up burst)", delta)
	}
}

func TestCBRSetRate(t *testing.T) {
	eng, m, nic := testPlatform(t, mgr.FeatureDefault())
	f := FlowN(0, 64)
	mapFlow(m, f)
	g := NewCBR(nic, m, f, 1_000_000, 1)
	g.Start()
	eng.RunUntil(100 * simtime.Millisecond)
	base := g.Offered.Total()
	g.SetRate(2_000_000)
	eng.RunUntil(200 * simtime.Millisecond)
	delta := g.Offered.Total() - base
	if delta < 190_000 || delta > 210_000 {
		t.Fatalf("after rate change emitted %d in 100ms, want ~200k", delta)
	}
}

func TestNICInterleavesFlows(t *testing.T) {
	// Two flows into one overloaded NF: accepted packets must split
	// roughly evenly (round-robin interleave), not first-flow-wins.
	eng := eventsim.New()
	pool := packet.NewPool(65536)
	reg := chain.NewRegistry()
	m := mgr.New(eng, pool, reg, mgr.DefaultParams(mgr.FeatureDefault()))
	core := cpusched.NewCore(0, eng, cpusched.NewCFSBatch(), cpusched.DefaultCoreParams())
	n := nf.New(0, "slow", nf.FixedCost(2000), nf.DefaultParams(), 1)
	core.AddTask(n.Task)
	m.AddNF(n)
	reg.MustAdd("c", 0)
	m.GrowChains(1)
	m.Start()
	nic := NewNIC(eng)
	f1, f2 := FlowN(0, 64), FlowN(1, 64)
	m.Table.InstallExact(f1.Key, 0)
	m.Table.InstallExact(f2.Key, 0)
	g1 := NewCBR(nic, m, f1, 5e6, 1)
	g2 := NewCBR(nic, m, f2, 5e6, 2)
	g1.Start()
	g2.Start()
	eng.RunUntil(200 * simtime.Millisecond)
	a1, a2 := float64(g1.Accepted.Total()), float64(g2.Accepted.Total())
	if a1 == 0 || a2 == 0 {
		t.Fatalf("starved flow: %v %v", a1, a2)
	}
	if r := a1 / a2; r < 0.9 || r > 1.1 {
		t.Fatalf("accepted ratio = %.3f, want ~1 (interleaved)", r)
	}
}

func TestPoissonMeanRate(t *testing.T) {
	eng, m, _ := testPlatform(t, mgr.FeatureDefault())
	f := FlowN(0, 64)
	mapFlow(m, f)
	p := NewPoisson(eng, m, f, 500_000, 7)
	p.Start()
	eng.RunUntil(simtime.Second)
	got := float64(p.Offered.Total())
	if got < 480_000 || got > 520_000 {
		t.Fatalf("poisson emitted %v in 1s, want ~500k", got)
	}
	p.Stop()
	at := p.Offered.Total()
	eng.RunUntil(2 * simtime.Second)
	if p.Offered.Total() != at {
		t.Fatal("poisson emitted after Stop")
	}
}

func TestTCPSlowStartAndCap(t *testing.T) {
	eng, m, _ := testPlatform(t, mgr.FeatureDefault())
	f := TCPFlowN(0, 1470)
	mapFlow(m, f)
	params := DefaultTCPParams()
	params.MaxCwnd = 32
	tcp := NewTCPFlow(eng, m, f, params)
	tcp.Start()
	eng.RunUntil(simtime.Second)
	if tcp.Cwnd() != 32 {
		t.Fatalf("uncongested cwnd = %v, want cap 32", tcp.Cwnd())
	}
	if tcp.DeliveredBytes.Total() == 0 {
		t.Fatal("no bytes delivered")
	}
	if tcp.Losses.Total() != 0 {
		t.Fatalf("losses on an uncongested path: %d", tcp.Losses.Total())
	}
	// Throughput ≈ cwnd * size / RTT.
	wantBps := 32.0 * 1470 * 8 / params.BaseRTT.Seconds()
	gotBps := float64(tcp.DeliveredBytes.Total()) * 8
	if gotBps < wantBps*0.7 || gotBps > wantBps*1.2 {
		t.Fatalf("goodput %.0f bps, want ~%.0f", gotBps, wantBps)
	}
}

func TestTCPBacksOffUnderLoss(t *testing.T) {
	// A slow NF (far below the TCP demand) forces queue drops; the flow
	// must shrink cwnd rather than blast away.
	eng := eventsim.New()
	pool := packet.NewPool(8192)
	reg := chain.NewRegistry()
	m := mgr.New(eng, pool, reg, mgr.DefaultParams(mgr.FeatureDefault()))
	core := cpusched.NewCore(0, eng, cpusched.NewCFSBatch(), cpusched.DefaultCoreParams())
	p := nf.DefaultParams()
	p.RingSize = 128
	n := nf.New(0, "slow", nf.FixedCost(200_000), p, 1)
	core.AddTask(n.Task)
	m.AddNF(n)
	reg.MustAdd("c", 0)
	m.GrowChains(1)
	m.Start()
	f := TCPFlowN(0, 1470)
	m.Table.InstallExact(f.Key, 0)
	tcp := NewTCPFlow(eng, m, f, DefaultTCPParams())
	tcp.Start()
	eng.RunUntil(2 * simtime.Second)
	if tcp.Losses.Total() == 0 {
		t.Fatal("expected losses at the slow NF")
	}
	// Equilibrium cwnd tracks the bottleneck buffer (128 descriptors)
	// plus a small BDP margin — bufferbloat, not runaway growth.
	if tcp.Cwnd() > 300 {
		t.Fatalf("cwnd = %v, runaway growth despite persistent loss", tcp.Cwnd())
	}
	// Goodput is pinned to the slow NF's capacity (~13 kpps), not the
	// sender's ambition.
	pps := float64(tcp.DeliveredBytes.Total()) / 1470 / 2
	if pps > 16_000 {
		t.Fatalf("delivered %.0f pps through a 13 kpps bottleneck", pps)
	}
}

func TestTCPECNResponse(t *testing.T) {
	// ECN marks must reduce cwnd without packet loss.
	eng := eventsim.New()
	pool := packet.NewPool(65536)
	reg := chain.NewRegistry()
	params := mgr.DefaultParams(mgr.FeatureNFVnice())
	params.ECNThreshold = 4
	m := mgr.New(eng, pool, reg, params)
	core := cpusched.NewCore(0, eng, cpusched.NewCFSBatch(), cpusched.DefaultCoreParams())
	n := nf.New(0, "mid", nf.FixedCost(9000), nf.DefaultParams(), 1)
	core.AddTask(n.Task)
	m.AddNF(n)
	reg.MustAdd("c", 0)
	m.GrowChains(1)
	m.Start()
	f := TCPFlowN(0, 1470)
	m.Table.InstallExact(f.Key, 0)
	tcp := NewTCPFlow(eng, m, f, DefaultTCPParams())
	tcp.Start()
	eng.RunUntil(simtime.Second)
	if tcp.ECNEchoes.Total() == 0 {
		t.Fatal("no ECN echoes despite standing queue")
	}
	if tcp.Cwnd() >= DefaultTCPParams().MaxCwnd {
		t.Fatal("cwnd did not respond to CE marks")
	}
}

func TestUDPSink(t *testing.T) {
	var s UDPSink
	pkt := &packet.Packet{Size: 100}
	s.Delivered(0, pkt)
	s.Delivered(0, pkt)
	s.Dropped(0, pkt, mgr.DropEntry)
	if s.DeliveredPkts.Total() != 2 || s.DeliveredBytes.Total() != 200 || s.DroppedPkts.Total() != 1 {
		t.Fatal("UDP sink counters wrong")
	}
}

func TestFlowConstructors(t *testing.T) {
	a, b := FlowN(1, 64), FlowN(2, 64)
	if a.Key == b.Key {
		t.Fatal("distinct flow indexes must produce distinct keys")
	}
	tc := TCPFlowN(1, 1470)
	if tc.Key.Proto != packet.TCP || a.Key.Proto != packet.UDP {
		t.Fatal("protocol assignment wrong")
	}
}
