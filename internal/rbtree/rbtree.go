// Package rbtree implements a generic red-black tree with parent pointers
// and stable node handles, mirroring the kernel's rbtree that backs the CFS
// runqueue timeline. Duplicate keys are permitted (they order to the right,
// i.e. FIFO among equals), which is exactly the behaviour CFS relies on for
// tasks with equal virtual runtimes.
package rbtree

type color bool

const (
	red   color = false
	black color = true
)

// Node is a handle to an element stored in the tree. Holders may keep the
// handle and later delete the element in O(log n) without a lookup, as CFS
// does when a task is dequeued.
type Node[T any] struct {
	Item                T
	left, right, parent *Node[T]
	color               color
}

// Tree is an ordered collection. The zero Tree is not usable; construct with
// New.
type Tree[T any] struct {
	root *Node[T]
	nil_ *Node[T] // shared sentinel, always black
	less func(a, b T) bool
	size int
}

// New returns an empty tree ordered by less.
func New[T any](less func(a, b T) bool) *Tree[T] {
	s := &Node[T]{color: black}
	s.left, s.right, s.parent = s, s, s
	return &Tree[T]{root: s, nil_: s, less: less}
}

// Len reports the number of elements.
func (t *Tree[T]) Len() int { return t.size }

// Insert adds item and returns its node handle.
func (t *Tree[T]) Insert(item T) *Node[T] {
	z := &Node[T]{Item: item, left: t.nil_, right: t.nil_, parent: t.nil_}
	y := t.nil_
	x := t.root
	for x != t.nil_ {
		y = x
		if t.less(z.Item, x.Item) {
			x = x.left
		} else {
			x = x.right
		}
	}
	z.parent = y
	switch {
	case y == t.nil_:
		t.root = z
	case t.less(z.Item, y.Item):
		y.left = z
	default:
		y.right = z
	}
	z.color = red
	t.insertFixup(z)
	t.size++
	return z
}

// Min returns the node with the smallest item, or nil when empty. This is
// the "leftmost" pointer CFS uses to pick the next task; here it is an
// O(log n) walk, which is fine at simulator scale.
func (t *Tree[T]) Min() *Node[T] {
	if t.root == t.nil_ {
		return nil
	}
	n := t.root
	for n.left != t.nil_ {
		n = n.left
	}
	return n
}

// Max returns the node with the largest item, or nil when empty.
func (t *Tree[T]) Max() *Node[T] {
	if t.root == t.nil_ {
		return nil
	}
	n := t.root
	for n.right != t.nil_ {
		n = n.right
	}
	return n
}

// Delete removes the node from the tree. The node must currently be in the
// tree; deleting a foreign or already-deleted node corrupts it (same
// contract as the kernel's rb_erase).
func (t *Tree[T]) Delete(z *Node[T]) {
	y := z
	yOrig := y.color
	var x *Node[T]
	switch {
	case z.left == t.nil_:
		x = z.right
		t.transplant(z, z.right)
	case z.right == t.nil_:
		x = z.left
		t.transplant(z, z.left)
	default:
		y = z.right
		for y.left != t.nil_ {
			y = y.left
		}
		yOrig = y.color
		x = y.right
		if y.parent == z {
			x.parent = y
		} else {
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.color = z.color
	}
	if yOrig == black {
		t.deleteFixup(x)
	}
	t.size--
	// Poison the removed node so reuse bugs surface quickly.
	z.left, z.right, z.parent = nil, nil, nil
}

// Ascend calls fn on every item in ascending order; fn returning false stops
// the walk.
func (t *Tree[T]) Ascend(fn func(item T) bool) {
	t.ascend(t.root, fn)
}

func (t *Tree[T]) ascend(n *Node[T], fn func(item T) bool) bool {
	if n == t.nil_ {
		return true
	}
	if !t.ascend(n.left, fn) {
		return false
	}
	if !fn(n.Item) {
		return false
	}
	return t.ascend(n.right, fn)
}

func (t *Tree[T]) transplant(u, v *Node[T]) {
	switch {
	case u.parent == t.nil_:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	v.parent = u.parent
}

func (t *Tree[T]) leftRotate(x *Node[T]) {
	y := x.right
	x.right = y.left
	if y.left != t.nil_ {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nil_:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree[T]) rightRotate(x *Node[T]) {
	y := x.left
	x.left = y.right
	if y.right != t.nil_ {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nil_:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *Tree[T]) insertFixup(z *Node[T]) {
	for z.parent.color == red {
		if z.parent == z.parent.parent.left {
			y := z.parent.parent.right
			if y.color == red {
				z.parent.color = black
				y.color = black
				z.parent.parent.color = red
				z = z.parent.parent
			} else {
				if z == z.parent.right {
					z = z.parent
					t.leftRotate(z)
				}
				z.parent.color = black
				z.parent.parent.color = red
				t.rightRotate(z.parent.parent)
			}
		} else {
			y := z.parent.parent.left
			if y.color == red {
				z.parent.color = black
				y.color = black
				z.parent.parent.color = red
				z = z.parent.parent
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rightRotate(z)
				}
				z.parent.color = black
				z.parent.parent.color = red
				t.leftRotate(z.parent.parent)
			}
		}
	}
	t.root.color = black
}

func (t *Tree[T]) deleteFixup(x *Node[T]) {
	for x != t.root && x.color == black {
		if x == x.parent.left {
			w := x.parent.right
			if w.color == red {
				w.color = black
				x.parent.color = red
				t.leftRotate(x.parent)
				w = x.parent.right
			}
			if w.left.color == black && w.right.color == black {
				w.color = red
				x = x.parent
			} else {
				if w.right.color == black {
					w.left.color = black
					w.color = red
					t.rightRotate(w)
					w = x.parent.right
				}
				w.color = x.parent.color
				x.parent.color = black
				w.right.color = black
				t.leftRotate(x.parent)
				x = t.root
			}
		} else {
			w := x.parent.left
			if w.color == red {
				w.color = black
				x.parent.color = red
				t.rightRotate(x.parent)
				w = x.parent.left
			}
			if w.right.color == black && w.left.color == black {
				w.color = red
				x = x.parent
			} else {
				if w.left.color == black {
					w.right.color = black
					w.color = red
					t.leftRotate(w)
					w = x.parent.left
				}
				w.color = x.parent.color
				x.parent.color = black
				w.left.color = black
				t.rightRotate(x.parent)
				x = t.root
			}
		}
	}
	x.color = black
}

// checkInvariants verifies red-black properties; used by tests.
func (t *Tree[T]) checkInvariants() (blackHeight int, ok bool) {
	if t.root.color != black {
		return 0, false
	}
	return t.check(t.root)
}

func (t *Tree[T]) check(n *Node[T]) (int, bool) {
	if n == t.nil_ {
		return 1, true
	}
	if n.color == red && (n.left.color == red || n.right.color == red) {
		return 0, false
	}
	lh, lok := t.check(n.left)
	rh, rok := t.check(n.right)
	if !lok || !rok || lh != rh {
		return 0, false
	}
	if n.left != t.nil_ && t.less(n.Item, n.left.Item) {
		return 0, false
	}
	if n.right != t.nil_ && t.less(n.right.Item, n.Item) {
		return 0, false
	}
	h := lh
	if n.color == black {
		h++
	}
	return h, true
}
