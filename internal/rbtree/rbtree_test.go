package rbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intTree() *Tree[int] { return New(func(a, b int) bool { return a < b }) }

func TestEmptyTree(t *testing.T) {
	tr := intTree()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Min() != nil || tr.Max() != nil {
		t.Fatal("Min/Max on empty tree should be nil")
	}
}

func TestInsertAndMin(t *testing.T) {
	tr := intTree()
	for _, v := range []int{5, 3, 8, 1, 9, 7} {
		tr.Insert(v)
	}
	if tr.Len() != 6 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.Min().Item; got != 1 {
		t.Fatalf("Min = %d, want 1", got)
	}
	if got := tr.Max().Item; got != 9 {
		t.Fatalf("Max = %d, want 9", got)
	}
}

func TestAscendOrder(t *testing.T) {
	tr := intTree()
	rng := rand.New(rand.NewSource(1))
	want := make([]int, 500)
	for i := range want {
		want[i] = rng.Intn(10000)
		tr.Insert(want[i])
	}
	sort.Ints(want)
	var got []int
	tr.Ascend(func(v int) bool { got = append(got, v); return true })
	if len(got) != len(want) {
		t.Fatalf("got %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("item %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := intTree()
	for i := 0; i < 10; i++ {
		tr.Insert(i)
	}
	n := 0
	tr.Ascend(func(v int) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("visited %d, want 3", n)
	}
}

func TestDeleteByHandle(t *testing.T) {
	tr := intTree()
	nodes := make(map[int]*Node[int])
	for i := 0; i < 100; i++ {
		nodes[i] = tr.Insert(i)
	}
	// Delete evens.
	for i := 0; i < 100; i += 2 {
		tr.Delete(nodes[i])
	}
	if tr.Len() != 50 {
		t.Fatalf("Len = %d, want 50", tr.Len())
	}
	if got := tr.Min().Item; got != 1 {
		t.Fatalf("Min = %d, want 1", got)
	}
	if _, ok := tr.checkInvariants(); !ok {
		t.Fatal("red-black invariants violated after deletes")
	}
}

func TestDuplicates(t *testing.T) {
	tr := intTree()
	a := tr.Insert(7)
	b := tr.Insert(7)
	c := tr.Insert(7)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// FIFO among equals: first inserted is leftmost.
	if tr.Min() != a {
		t.Fatal("first duplicate should be leftmost")
	}
	tr.Delete(a)
	if tr.Min() != b {
		t.Fatal("second duplicate should become leftmost")
	}
	tr.Delete(b)
	tr.Delete(c)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
}

func TestRandomOps(t *testing.T) {
	// Interleave inserts and deletes, verifying invariants and content
	// against a reference slice.
	tr := intTree()
	rng := rand.New(rand.NewSource(99))
	type entry struct {
		v    int
		node *Node[int]
	}
	var live []entry
	for op := 0; op < 5000; op++ {
		if len(live) == 0 || rng.Intn(3) != 0 {
			v := rng.Intn(1000)
			live = append(live, entry{v, tr.Insert(v)})
		} else {
			i := rng.Intn(len(live))
			tr.Delete(live[i].node)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if op%500 == 0 {
			if _, ok := tr.checkInvariants(); !ok {
				t.Fatalf("invariants violated at op %d", op)
			}
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(live))
	}
	want := make([]int, len(live))
	for i, e := range live {
		want[i] = e.v
	}
	sort.Ints(want)
	var got []int
	tr.Ascend(func(v int) bool { got = append(got, v); return true })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("content mismatch at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestQuickInvariants(t *testing.T) {
	f := func(vals []int16) bool {
		tr := intTree()
		var nodes []*Node[int]
		for _, v := range vals {
			nodes = append(nodes, tr.Insert(int(v)))
		}
		if _, ok := tr.checkInvariants(); !ok {
			return false
		}
		// Delete every other node.
		for i := 0; i < len(nodes); i += 2 {
			tr.Delete(nodes[i])
		}
		_, ok := tr.checkInvariants()
		return ok && tr.Len() == len(vals)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsertDeleteMin(b *testing.B) {
	// The CFS hot path: insert a task, find min, delete it.
	tr := intTree()
	rng := rand.New(rand.NewSource(7))
	// Pre-populate with a plausible runqueue depth.
	for i := 0; i < 8; i++ {
		tr.Insert(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := tr.Insert(rng.Intn(1 << 20))
		_ = tr.Min()
		tr.Delete(n)
	}
}
