package packet

import (
	"testing"
	"testing/quick"
)

func TestPoolLifecycle(t *testing.T) {
	p := NewPool(4)
	if p.Capacity() != 4 || p.Available() != 4 || p.InUse() != 0 {
		t.Fatalf("fresh pool: cap=%d avail=%d inuse=%d", p.Capacity(), p.Available(), p.InUse())
	}
	var pkts []*Packet
	for i := 0; i < 4; i++ {
		pkt := p.Get()
		if pkt == nil {
			t.Fatalf("Get %d returned nil with capacity left", i)
		}
		pkts = append(pkts, pkt)
	}
	if p.Available() != 0 || p.InUse() != 4 {
		t.Fatalf("drained pool: avail=%d inuse=%d", p.Available(), p.InUse())
	}
	if p.Get() != nil {
		t.Fatal("Get on exhausted pool should return nil")
	}
	if p.Exhausted != 1 {
		t.Fatalf("Exhausted = %d", p.Exhausted)
	}
	for _, pkt := range pkts {
		pkt.Release()
	}
	if p.Available() != 4 {
		t.Fatalf("after releases: avail=%d", p.Available())
	}
}

func TestPoolSequenceNumbers(t *testing.T) {
	p := NewPool(2)
	a := p.Get()
	b := p.Get()
	aSeq, bSeq := a.Seq, b.Seq
	if aSeq == bSeq {
		t.Fatal("sequence numbers must be unique")
	}
	a.Release()
	c := p.Get()
	if c.Seq == bSeq || c.Seq == aSeq {
		t.Fatal("recycled descriptor must get a fresh sequence number")
	}
}

func TestPoolGetZeroesDescriptor(t *testing.T) {
	p := NewPool(1)
	a := p.Get()
	a.Hop = 7
	a.Work = 999
	a.FlowID = 3
	a.Release()
	b := p.Get()
	if b.Hop != 0 || b.Work != 0 || b.FlowID != 0 {
		t.Fatal("recycled descriptor not zeroed")
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	p := NewPool(1)
	pkt := p.Get()
	pkt.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	pkt.Release()
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool(0) did not panic")
		}
	}()
	NewPool(0)
}

func TestFlowKeyHashDeterminism(t *testing.T) {
	k := FlowKey{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 1234, DstPort: 80, Proto: TCP}
	if k.Hash() != k.Hash() {
		t.Fatal("hash must be deterministic")
	}
}

func TestFlowKeyHashDistinguishes(t *testing.T) {
	base := FlowKey{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: UDP}
	variants := []FlowKey{
		{SrcIP: 9, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: UDP},
		{SrcIP: 1, DstIP: 9, SrcPort: 3, DstPort: 4, Proto: UDP},
		{SrcIP: 1, DstIP: 2, SrcPort: 9, DstPort: 4, Proto: UDP},
		{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 9, Proto: UDP},
		{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: TCP},
	}
	for i, v := range variants {
		if v.Hash() == base.Hash() {
			t.Errorf("variant %d collides with base", i)
		}
	}
}

func TestFlowKeyHashQuick(t *testing.T) {
	// Different keys should essentially never collide for random input.
	f := func(a, b FlowKey) bool {
		if a == b {
			return a.Hash() == b.Hash()
		}
		return a.Hash() != b.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestProtoString(t *testing.T) {
	if UDP.String() != "UDP" || TCP.String() != "TCP" {
		t.Fatal("proto names wrong")
	}
	if Proto(99).String() != "proto(99)" {
		t.Fatalf("unknown proto: %s", Proto(99))
	}
}

func TestFlowKeyString(t *testing.T) {
	k := FlowKey{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 1234, DstPort: 80, Proto: TCP}
	want := "TCP 10.0.0.1:1234->10.0.0.2:80"
	if got := k.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func BenchmarkPoolGetRelease(b *testing.B) {
	p := NewPool(1024)
	for i := 0; i < b.N; i++ {
		pkt := p.Get()
		pkt.Release()
	}
}

func BenchmarkFlowKeyHash(b *testing.B) {
	k := FlowKey{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 1234, DstPort: 80, Proto: TCP}
	var sink uint64
	for i := 0; i < b.N; i++ {
		k.SrcPort = uint16(i)
		sink += k.Hash()
	}
	_ = sink
}
