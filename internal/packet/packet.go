// Package packet models packet descriptors and the shared memory buffer
// pool of the NFV platform. As in OpenNetVM, NFs never copy packet payloads:
// descriptors referencing pool buffers travel through ring queues, and the
// pool caps the total number of packets in flight inside the platform.
package packet

import (
	"fmt"

	"nfvnice/internal/simtime"
)

// Proto identifies the transport protocol of a flow.
type Proto uint8

// Transport protocols used by the workloads.
const (
	UDP Proto = 17
	TCP Proto = 6
)

func (p Proto) String() string {
	switch p {
	case UDP:
		return "UDP"
	case TCP:
		return "TCP"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// FlowKey is the 5-tuple used for flow table lookups.
type FlowKey struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Proto            Proto
}

// Hash returns a 64-bit FNV-1a hash of the key, the same family of cheap
// non-cryptographic hash DPDK flow classification uses.
func (k FlowKey) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	for i := 0; i < 4; i++ {
		mix(byte(k.SrcIP >> (8 * i)))
		mix(byte(k.DstIP >> (8 * i)))
	}
	mix(byte(k.SrcPort))
	mix(byte(k.SrcPort >> 8))
	mix(byte(k.DstPort))
	mix(byte(k.DstPort >> 8))
	mix(byte(k.Proto))
	return h
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%s %d.%d.%d.%d:%d->%d.%d.%d.%d:%d",
		k.Proto,
		byte(k.SrcIP>>24), byte(k.SrcIP>>16), byte(k.SrcIP>>8), byte(k.SrcIP), k.SrcPort,
		byte(k.DstIP>>24), byte(k.DstIP>>16), byte(k.DstIP>>8), byte(k.DstIP), k.DstPort)
}

// ECN codepoints carried in the (modelled) IP header.
type ECN uint8

// ECN codepoints per RFC 3168.
const (
	NotECT ECN = 0 // transport does not support ECN
	ECT    ECN = 2 // ECN-capable transport
	CE     ECN = 3 // congestion experienced
)

// Packet is a packet descriptor. Fields are set by the traffic generator and
// consumed by the manager, NFs, and sinks. Descriptors are pooled; a Packet
// must not be referenced after Release.
type Packet struct {
	Seq     uint64  // global sequence number, assigned by the pool
	Flow    FlowKey // 5-tuple
	FlowID  int     // dense flow identifier assigned by the generator
	ChainID int     // service chain this packet is mapped to
	Size    int     // frame size in bytes (FCS included)
	ECN     ECN

	Arrival simtime.Cycles // time the packet hit the NIC
	Hop     int            // index of the next NF in the chain
	Work    simtime.Cycles // cycles of NF processing spent on this packet so far

	// CostClass selects among per-NF cost classes for the variable
	// processing cost experiments (Fig 10); generators assign it per
	// packet, deterministically from the seeded RNG.
	CostClass int

	pool *Pool
	live bool
}

// Pool is a fixed-capacity descriptor pool, the analogue of the DPDK
// mempool/huge-page region shared by manager and NFs. When the pool is
// exhausted, arriving packets are dropped at the NIC — the same backstop a
// real platform has.
type Pool struct {
	capacity int
	free     []*Packet
	seq      uint64

	// Allocs and Exhausted count successful allocations and allocation
	// failures, for diagnostics.
	Allocs    uint64
	Exhausted uint64
}

// NewPool returns a pool of the given capacity.
func NewPool(capacity int) *Pool {
	if capacity <= 0 {
		panic("packet: pool capacity must be positive")
	}
	p := &Pool{capacity: capacity, free: make([]*Packet, 0, capacity)}
	backing := make([]Packet, capacity)
	for i := range backing {
		backing[i].pool = p
		p.free = append(p.free, &backing[i])
	}
	return p
}

// Capacity reports the pool's total descriptor count.
func (p *Pool) Capacity() int { return p.capacity }

// Available reports the number of free descriptors.
func (p *Pool) Available() int { return len(p.free) }

// InUse reports descriptors currently allocated.
func (p *Pool) InUse() int { return p.capacity - len(p.free) }

// Get allocates a descriptor, or returns nil when the pool is exhausted.
// The descriptor is zeroed except for its sequence number.
func (p *Pool) Get() *Packet {
	if len(p.free) == 0 {
		p.Exhausted++
		return nil
	}
	pkt := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.seq++
	*pkt = Packet{Seq: p.seq, pool: p, live: true}
	p.Allocs++
	return pkt
}

// Release returns the descriptor to its pool. Double release panics: it is
// always a platform bug (the equivalent of a DPDK mbuf double free).
func (pkt *Packet) Release() {
	if pkt.pool == nil || !pkt.live {
		panic("packet: release of non-pooled or already-released packet")
	}
	pkt.live = false
	pkt.pool.free = append(pkt.pool.free, pkt)
}
