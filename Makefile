# Developer entry points. Everything here is plain `go` — no external tools.

GO      ?= go
COMMIT  := $(shell git rev-parse --short HEAD 2>/dev/null)

.PHONY: all build vet test race bench-dataplane bench-alloc-gate bench-compare bench-movers bench-scaling profile-dataplane

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/ring/ ./internal/dataplane/ \
		./internal/flowtable/ ./internal/frontend/

# Re-measure the dataplane hot path and rewrite the "current" section of
# BENCH_dataplane.json (the "baseline" section — the pre-batching numbers —
# is preserved). Run on an idle machine; compare current vs baseline.
bench-dataplane:
	$(GO) test -run='^$$' -bench='SteadyState|Chain3' -benchtime=2s ./internal/dataplane/ | \
		tee /dev/stderr | \
		$(GO) run ./cmd/benchdataplane -out BENCH_dataplane.json -commit "$(COMMIT)"
	$(GO) test -run='^$$' -bench='RealNFChain' -benchtime=2s ./internal/nfs/ | \
		tee /dev/stderr | \
		$(GO) run ./cmd/benchdataplane -out BENCH_dataplane.json -commit "$(COMMIT)"

# The allocation gates CI enforces: steady-state packet flow must not
# allocate — on no-op stages (serial and Movers=2/Movers=4 sharded paths)
# and on real NFs mutating arena frames in place.
bench-alloc-gate:
	$(GO) test -run=TestSteadyStateZeroAllocs -count=1 -v ./internal/dataplane/
	$(GO) test -run=TestRealNFChainZeroAllocs -count=1 -v ./internal/nfs/

# Before/after comparison: benchmark the tree, diff against the last saved
# run, then save this run as the new reference. Uses benchstat when it is on
# PATH (statistical, needs BENCH_COUNT >= 10 for tight CIs) for the report;
# the builtin comparator always runs as the gate and fails the target when
# any ns/pkt regresses more than BENCH_THRESHOLD percent.
BENCH_COUNT     ?= 5
BENCH_THRESHOLD ?= 5
bench-compare:
	@mkdir -p results
	$(GO) test -run='^$$' -bench='SteadyState|Chain3' -benchtime=1s \
		-count=$(BENCH_COUNT) ./internal/dataplane/ | tee results/bench_new.txt
	$(GO) test -run='^$$' -bench='RealNFChain' -benchtime=1s \
		-count=$(BENCH_COUNT) ./internal/nfs/ | tee -a results/bench_new.txt
	@if [ -f results/bench_old.txt ]; then \
		if command -v benchstat >/dev/null 2>&1; then \
			benchstat results/bench_old.txt results/bench_new.txt; \
		fi; \
		$(GO) run ./cmd/benchdataplane -compare -threshold $(BENCH_THRESHOLD) \
			results/bench_old.txt results/bench_new.txt || \
			{ rm -f results/bench_new.txt; exit 1; }; \
	else \
		echo "no results/bench_old.txt — this run saved as the reference"; \
	fi
	@cp results/bench_new.txt results/bench_old.txt

# In-process movers sweep (no `go test` harness): drives the closed-loop
# 3-stage chain at 1, 2 and 4 TX shards and merges the points into
# BENCH_dataplane.json's current section.
bench-movers:
	$(GO) run ./cmd/benchdataplane -movers 1,2,4 -benchtime 2s \
		-out BENCH_dataplane.json -commit "$(COMMIT)" < /dev/null

# Core-count scaling sweep: each point pins GOMAXPROCS, runs one mover per
# core with the chain's stages spread across cores, and injects through a
# producer lane. Rewrites the "scaling" section of BENCH_dataplane.json.
# Meaningful on a runner with >= 4 CPUs; a 1-CPU host records a flat curve
# (maxprocs_host in the JSON says which happened).
bench-scaling:
	$(GO) run ./cmd/benchdataplane -cores 1,2,4,8 -benchtime 2s \
		-out BENCH_dataplane.json -commit "$(COMMIT)" < /dev/null

# CPU + mutex-contention profiles of the in-process Movers=4 sweep, for
# chasing hot-path and lock regressions. Inspect with `go tool pprof`.
profile-dataplane:
	@mkdir -p results
	$(GO) run ./cmd/benchdataplane -movers 4 -benchtime 5s -out '' \
		-cpuprofile results/dataplane_cpu.pprof \
		-mutexprofile results/dataplane_mutex.pprof < /dev/null
