# Developer entry points. Everything here is plain `go` — no external tools.

GO      ?= go
COMMIT  := $(shell git rev-parse --short HEAD 2>/dev/null)

.PHONY: all build vet test race bench-dataplane bench-alloc-gate bench-compare bench-movers

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/ring/ ./internal/dataplane/

# Re-measure the dataplane hot path and rewrite the "current" section of
# BENCH_dataplane.json (the "baseline" section — the pre-batching numbers —
# is preserved). Run on an idle machine; compare current vs baseline.
bench-dataplane:
	$(GO) test -run='^$$' -bench='SteadyState|Chain3' -benchtime=2s ./internal/dataplane/ | \
		tee /dev/stderr | \
		$(GO) run ./cmd/benchdataplane -out BENCH_dataplane.json -commit "$(COMMIT)"

# The allocation gate CI enforces: steady-state packet flow must not allocate.
# Matches both the serial gate and the Movers=2 sharded-path gate.
bench-alloc-gate:
	$(GO) test -run=TestSteadyStateZeroAllocs -count=1 -v ./internal/dataplane/

# Before/after comparison: benchmark the tree, diff against the last saved
# run, then save this run as the new reference. Uses benchstat when it is on
# PATH (statistical, needs BENCH_COUNT >= 10 for tight CIs); falls back to
# the builtin averaging comparator otherwise.
BENCH_COUNT ?= 5
bench-compare:
	@mkdir -p results
	$(GO) test -run='^$$' -bench='SteadyState|Chain3' -benchtime=1s \
		-count=$(BENCH_COUNT) ./internal/dataplane/ | tee results/bench_new.txt
	@if [ -f results/bench_old.txt ]; then \
		if command -v benchstat >/dev/null 2>&1; then \
			benchstat results/bench_old.txt results/bench_new.txt; \
		else \
			$(GO) run ./cmd/benchdataplane -compare results/bench_old.txt results/bench_new.txt; \
		fi; \
	else \
		echo "no results/bench_old.txt — this run saved as the reference"; \
	fi
	@cp results/bench_new.txt results/bench_old.txt

# In-process movers sweep (no `go test` harness): drives the closed-loop
# 3-stage chain at 1, 2 and 4 TX shards and merges the points into
# BENCH_dataplane.json's current section.
bench-movers:
	$(GO) run ./cmd/benchdataplane -movers 1,2,4 -benchtime 2s \
		-out BENCH_dataplane.json -commit "$(COMMIT)" < /dev/null
