# Developer entry points. Everything here is plain `go` — no external tools.

GO      ?= go
COMMIT  := $(shell git rev-parse --short HEAD 2>/dev/null)

.PHONY: all build vet test race bench-dataplane bench-alloc-gate

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/ring/ ./internal/dataplane/

# Re-measure the dataplane hot path and rewrite the "current" section of
# BENCH_dataplane.json (the "baseline" section — the pre-batching numbers —
# is preserved). Run on an idle machine; compare current vs baseline.
bench-dataplane:
	$(GO) test -run='^$$' -bench='SteadyState|Chain3' -benchtime=2s ./internal/dataplane/ | \
		tee /dev/stderr | \
		$(GO) run ./cmd/benchdataplane -out BENCH_dataplane.json -commit "$(COMMIT)"

# The allocation gate CI enforces: steady-state packet flow must not allocate.
bench-alloc-gate:
	$(GO) test -run=TestSteadyStateZeroAllocs -count=1 -v ./internal/dataplane/
