package nfvnice

import (
	"math/rand"
	"testing"
)

// TestRandomTopologies drives randomly generated platforms — random NF
// counts, costs, core placements, chain shapes, rates, schedulers, and
// feature modes — and checks global invariants that must hold for every
// configuration:
//
//  1. no descriptor leaks (pool in-use == rings + in-flight batches),
//  2. packet conservation (delivered ≤ offered),
//  3. no starvation of any chain that has exclusive NFs and offered load,
//  4. the run is deterministic.
func TestRandomTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized platform runs")
	}
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			first := runRandomTopology(t, seed)
			second := runRandomTopology(t, seed)
			if first != second {
				t.Fatalf("seed %d nondeterministic: %v vs %v", seed, first, second)
			}
		})
	}
}

type topoResult struct {
	delivered uint64
	wasted    uint64
	entry     uint64
}

func runRandomTopology(t *testing.T, seed int64) topoResult {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sched := AllSchedPolicies()[rng.Intn(4)]
	mode := AllModes()[rng.Intn(4)]
	cfg := DefaultConfig(sched, mode)
	cfg.Seed = seed
	p := NewPlatform(cfg)

	nCores := 1 + rng.Intn(3)
	for i := 0; i < nCores; i++ {
		p.AddCore()
	}
	nNFs := 2 + rng.Intn(5)
	costs := []Cycles{80, 150, 300, 700, 1500, 4000}
	nfIDs := make([]int, nNFs)
	for i := range nfIDs {
		nfIDs[i] = p.AddNF("nf", FixedCost(costs[rng.Intn(len(costs))]), rng.Intn(nCores))
	}
	// Random chains: each picks a random subset (order preserved, no
	// repeats by construction of Perm prefix).
	nChains := 1 + rng.Intn(3)
	chains := make([]int, nChains)
	for c := range chains {
		perm := rng.Perm(nNFs)
		length := 1 + rng.Intn(nNFs)
		ids := make([]int, 0, length)
		for _, idx := range perm[:length] {
			ids = append(ids, nfIDs[idx])
		}
		chains[c] = p.AddChain("c", ids...)
		f := UDPFlow(c, 64)
		p.MapFlow(f, chains[c])
		p.AddCBR(f, Rate(float64(200_000+rng.Intn(4_000_000))))
	}
	p.Run(Milliseconds(60))

	// Invariant 1: descriptor conservation.
	inRings := 0
	for i := 0; i < p.NFCount(); i++ {
		n := p.NF(i)
		inRings += n.Rx.Len() + n.Tx.Len() + n.InFlight()
	}
	if p.Pool.InUse() != inRings {
		t.Fatalf("seed %d: pool in-use %d != rings %d (leak)", seed, p.Pool.InUse(), inRings)
	}

	// Invariant 2: conservation of packets.
	var offered, delivered uint64
	for i := range chains {
		delivered += p.Mgr.Delivered[chains[i]].Total()
	}
	offered = p.Pool.Allocs + p.Mgr.Throttles.TotalEntryDrops()
	if delivered > offered {
		t.Fatalf("seed %d: delivered %d > offered %d", seed, delivered, offered)
	}

	// Invariant 3: every chain delivered something (offered ≥ 200 kpps for
	// 60 ms through NFs that always make progress).
	for i, ch := range chains {
		if p.Mgr.Delivered[ch].Total() == 0 {
			t.Fatalf("seed %d: chain %d starved completely", seed, i)
		}
	}
	return topoResult{
		delivered: delivered,
		wasted:    p.Mgr.TotalWasted(),
		entry:     p.Mgr.Throttles.TotalEntryDrops(),
	}
}
