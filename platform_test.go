package nfvnice

import (
	"math"
	"strings"
	"testing"
)

// build3NFChain assembles the paper's §4.2.1 scenario: a Low(120) → Med(270)
// → High(550) chain sharing one core, offered 64-byte line-rate UDP.
func build3NFChain(sched SchedPolicy, mode Mode) (*Platform, int) {
	p := NewPlatform(DefaultConfig(sched, mode))
	core := p.AddCore()
	n1 := p.AddNF("low", FixedCost(120), core)
	n2 := p.AddNF("med", FixedCost(270), core)
	n3 := p.AddNF("high", FixedCost(550), core)
	ch := p.AddChain("low-med-high", n1, n2, n3)
	f := UDPFlow(0, 64)
	p.MapFlow(f, ch)
	p.AddCBR(f, LineRate10G(64))
	return p, ch
}

func runWindow(p *Platform, warmup, measure Cycles) *Snapshot {
	p.Run(warmup)
	s := p.TakeSnapshot()
	p.Run(warmup + measure)
	return s
}

func TestChainDefaultVsNFVnice(t *testing.T) {
	if testing.Short() {
		t.Skip("full platform run")
	}
	warm, meas := Milliseconds(100), Milliseconds(300)

	pd, chd := build3NFChain(SchedBatch, ModeDefault)
	sd := runWindow(pd, warm, meas)
	defThroughput := pd.ChainDeliveredSince(sd, chd)
	defWasted := pd.TotalWastedSince(sd)

	pn, chn := build3NFChain(SchedBatch, ModeNFVnice)
	sn := runWindow(pn, warm, meas)
	niceThroughput := pn.ChainDeliveredSince(sn, chn)
	niceWasted := pn.TotalWastedSince(sn)

	t.Logf("default: %.3f Mpps, wasted %.3f Mpps", defThroughput.Mpps(), defWasted.Mpps())
	t.Logf("nfvnice: %.3f Mpps, wasted %.3f Mpps", niceThroughput.Mpps(), niceWasted.Mpps())

	if defThroughput <= 0 || niceThroughput <= 0 {
		t.Fatal("no packets delivered")
	}
	// Under overload the default scheduler wastes work at upstream NFs;
	// NFVnice must beat it on throughput...
	if niceThroughput < defThroughput*1.2 {
		t.Fatalf("NFVnice %.3f Mpps not clearly above default %.3f Mpps",
			niceThroughput.Mpps(), defThroughput.Mpps())
	}
	// ...and nearly eliminate wasted work (paper Table 3: millions -> ~0).
	if defWasted < 100_000 {
		t.Fatalf("default wasted only %.0f pps; overload scenario broken", float64(defWasted))
	}
	if niceWasted > defWasted/20 {
		t.Fatalf("NFVnice wasted %.0f pps vs default %.0f pps; backpressure ineffective",
			float64(niceWasted), float64(defWasted))
	}
	// The chain's theoretical ceiling on one core is 2.6G/940 ≈ 2.77 Mpps;
	// NFVnice should get within 25% of it.
	if niceThroughput.Mpps() < 2.0 {
		t.Fatalf("NFVnice throughput %.3f Mpps too far from the 2.77 Mpps ceiling", niceThroughput.Mpps())
	}
}

func TestRateCostProportionalShares(t *testing.T) {
	if testing.Short() {
		t.Skip("full platform run")
	}
	// Two NFs, same arrival rate, 1:3 cost ratio, separate flows, one core:
	// NFVnice must give the heavy NF ~3x the CPU and equalize throughput
	// (the Fig 15a steady state).
	p := NewPlatform(DefaultConfig(SchedNormal, ModeNFVnice))
	core := p.AddCore()
	a := p.AddNF("cost1", FixedCost(300), core)
	b := p.AddNF("cost3", FixedCost(900), core)
	ca := p.AddChain("a", a)
	cb := p.AddChain("b", b)
	fa, fb := UDPFlow(0, 64), UDPFlow(1, 64)
	p.MapFlow(fa, ca)
	p.MapFlow(fb, cb)
	// Offer enough that both NFs individually exceed the core: the light
	// NF alone needs 10M*300 = 115% of a core, the heavy 346%.
	p.AddCBR(fa, 10e6)
	p.AddCBR(fb, 10e6)
	s := runWindow(p, Milliseconds(200), Milliseconds(300))
	m := p.NFMetricsSince(s)
	shareRatio := m[1].CPUShare / m[0].CPUShare
	if shareRatio < 2.4 || shareRatio > 3.6 {
		t.Fatalf("CPU share ratio = %.2f, want ~3 (rate-cost proportional)", shareRatio)
	}
	tputA := p.ChainDeliveredSince(s, ca)
	tputB := p.ChainDeliveredSince(s, cb)
	if r := float64(tputA) / float64(tputB); math.Abs(r-1) > 0.25 {
		t.Fatalf("throughput ratio %.2f, want ~1 (equal output under rate-cost fairness)", r)
	}
}

func TestDefaultCFSSplitsEvenly(t *testing.T) {
	if testing.Short() {
		t.Skip("full platform run")
	}
	// Control for the previous test: without NFVnice, CFS gives each NF
	// half the CPU and the heavy NF delivers ~1/3 the throughput.
	p := NewPlatform(DefaultConfig(SchedNormal, ModeDefault))
	core := p.AddCore()
	a := p.AddNF("cost1", FixedCost(300), core)
	b := p.AddNF("cost3", FixedCost(900), core)
	ca := p.AddChain("a", a)
	cb := p.AddChain("b", b)
	p.MapFlow(UDPFlow(0, 64), ca)
	p.MapFlow(UDPFlow(1, 64), cb)
	p.AddCBR(UDPFlow(0, 64), 10e6)
	p.AddCBR(UDPFlow(1, 64), 10e6)
	s := runWindow(p, Milliseconds(200), Milliseconds(300))
	m := p.NFMetricsSince(s)
	if r := m[1].CPUShare / m[0].CPUShare; r < 0.8 || r > 1.25 {
		t.Fatalf("default CFS share ratio = %.2f, want ~1", r)
	}
	tputA := p.ChainDeliveredSince(s, ca)
	tputB := p.ChainDeliveredSince(s, cb)
	if r := float64(tputA) / float64(tputB); r < 2 {
		t.Fatalf("light/heavy throughput ratio = %.2f, want ~3 under equal CPU split", r)
	}
}

func TestBackpressureStateReached(t *testing.T) {
	if testing.Short() {
		t.Skip("full platform run")
	}
	p, _ := build3NFChain(SchedBatch, ModeNFVnice)
	p.Run(Milliseconds(50))
	// Under line-rate overload, the bottleneck NF (id 2) must have
	// throttled at some point and entry drops must be happening.
	if p.EntryThrottleDrops() == 0 {
		t.Fatal("no entry-point sheds under heavy overload")
	}
}

func TestDeterministicRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full platform run")
	}
	run := func() (uint64, uint64) {
		p, _ := build3NFChain(SchedNormal, ModeNFVnice)
		p.Run(Milliseconds(80))
		return p.Mgr.TotalDelivered(), p.Mgr.TotalWasted()
	}
	d1, w1 := run()
	d2, w2 := run()
	if d1 != d2 || w1 != w2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", d1, w1, d2, w2)
	}
}

func TestPacketConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("full platform run")
	}
	// Every descriptor must be accounted for: delivered + in rings +
	// in-pool = capacity; no leaks after a bursty overloaded run.
	p, _ := build3NFChain(SchedNormal, ModeDefault)
	p.Run(Milliseconds(100))
	inRings := 0
	for i := 0; i < p.NFCount(); i++ {
		n := p.NF(i)
		inRings += n.Rx.Len() + n.Tx.Len() + n.InFlight()
	}
	if got := p.Pool.InUse(); got != inRings {
		t.Fatalf("pool says %d in use but rings hold %d: descriptor leak", got, inRings)
	}
}

func TestTracingCapturesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full platform run")
	}
	p, _ := build3NFChain(SchedBatch, ModeNFVnice)
	tr := p.EnableTracing()
	p.Run(Milliseconds(50))
	if tr.Len() == 0 {
		t.Fatal("no trace events recorded")
	}
	var buf strings.Builder
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Run spans for each NF, plus backpressure instants under overload.
	for _, want := range []string{`"name":"low"`, `"name":"high"`, "bp-throttle", "shares:"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q", want)
		}
	}
}

func TestCrossHostLink(t *testing.T) {
	if testing.Short() {
		t.Skip("full platform run")
	}
	// Two hosts, one timeline: packets exiting host A's chain re-enter
	// host B's chain after the link delay; end-to-end events reach the
	// downstream sink exactly once per packet.
	a := NewPlatform(DefaultConfig(SchedBatch, ModeDefault))
	fw := a.AddNF("fw", FixedCost(200), a.AddCore())
	chainA := a.AddChain("a", fw)

	b := NewPlatformOn(DefaultConfig(SchedBatch, ModeDefault), a.Eng)
	wan := b.AddNF("wan", FixedCost(400), b.AddCore())
	chainB := b.AddChain("b", wan)

	f := UDPFlow(0, 64)
	a.MapFlow(f, chainA)
	b.MapFlow(f, chainB)
	link := ConnectHosts(a, b, f, Milliseconds(1))
	var delivered, dropped int
	link.Downstream = sinkFuncs{
		del:  func(*Packet) { delivered++ },
		drop: func(*Packet, DropPoint) { dropped++ },
	}
	a.AddCBR(f, 100_000) // well under both hosts' capacity

	b.Start()
	a.Run(Milliseconds(100))
	if link.Forwarded < 9_000 {
		t.Fatalf("forwarded %d, want ~9900 (100 kpps x ~99 ms)", link.Forwarded)
	}
	if dropped != 0 || link.DroppedAtB != 0 {
		t.Fatalf("unexpected drops: sink=%d link=%d", dropped, link.DroppedAtB)
	}
	if delivered == 0 || uint64(delivered) > link.Forwarded {
		t.Fatalf("delivered %d of %d forwarded", delivered, link.Forwarded)
	}
	// Conservation across hosts: A's exits equal link attempts plus the
	// packets still in flight on the wire (≤ delay × rate = 100).
	exits := a.Mgr.Delivered[chainA].Total()
	attempts := link.Forwarded + link.DroppedAtB
	if exits < attempts || exits-attempts > 110 {
		t.Fatalf("A exits %d vs link attempts %d (in-flight beyond link capacity)", exits, attempts)
	}
}

func TestConnectHostsRequiresSharedEngine(t *testing.T) {
	a := NewPlatform(DefaultConfig(SchedBatch, ModeDefault))
	b := NewPlatform(DefaultConfig(SchedBatch, ModeDefault))
	defer func() {
		if recover() == nil {
			t.Fatal("separate engines accepted")
		}
	}()
	ConnectHosts(a, b, UDPFlow(0, 64), 0)
}

type sinkFuncs struct {
	del  func(*Packet)
	drop func(*Packet, DropPoint)
}

func (s sinkFuncs) Delivered(_ Cycles, p *Packet)             { s.del(p) }
func (s sinkFuncs) Dropped(_ Cycles, p *Packet, at DropPoint) { s.drop(p, at) }
