package nfvnice_test

import (
	"fmt"
	"strings"

	"nfvnice"
)

// ExamplePlatform builds the paper's canonical scenario: a three-NF chain
// with heterogeneous per-packet costs sharing one CPU core under 10G line
// rate, managed by full NFVnice. Deterministic, so the output is exact.
func ExamplePlatform() {
	cfg := nfvnice.DefaultConfig(nfvnice.SchedBatch, nfvnice.ModeNFVnice)
	p := nfvnice.NewPlatform(cfg)

	core := p.AddCore()
	mon := p.AddNF("monitor", nfvnice.FixedCost(120), core)
	nat := p.AddNF("nat", nfvnice.FixedCost(270), core)
	dpi := p.AddNF("dpi", nfvnice.FixedCost(550), core)

	ch := p.AddChain("mon-nat-dpi", mon, nat, dpi)
	flow := nfvnice.UDPFlow(0, 64)
	p.MapFlow(flow, ch)
	p.AddCBR(flow, nfvnice.LineRate10G(64))

	p.Run(nfvnice.Milliseconds(100))
	snap := p.TakeSnapshot()
	p.Run(nfvnice.Milliseconds(400))

	fmt.Printf("throughput: %.2f Mpps\n", p.ChainDeliveredSince(snap, ch).Mpps())
	fmt.Printf("wasted: %.2f Mpps\n", float64(p.TotalWastedSince(snap))/1e6)
	// Output:
	// throughput: 2.73 Mpps
	// wasted: 0.00 Mpps
}

// ExampleSpec shows the declarative route: the same platform from JSON.
func ExampleSpec() {
	js := `{
	  "scheduler": "BATCH", "mode": "nfvnice", "cores": 1,
	  "nfs": [
	    {"name": "monitor", "core": 0, "cost": 120},
	    {"name": "dpi", "core": 0, "cost": 550}
	  ],
	  "chains": [{"name": "c", "nfs": ["monitor", "dpi"]}],
	  "flows": [{"chain": "c", "lineRate": true}]
	}`
	spec, err := nfvnice.LoadSpec(strings.NewReader(js))
	if err != nil {
		fmt.Println("load:", err)
		return
	}
	p, chains, err := spec.Build()
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	p.Run(nfvnice.Milliseconds(100))
	snap := p.TakeSnapshot()
	p.Run(nfvnice.Milliseconds(300))
	fmt.Printf("chains: %d, throughput %.1f Mpps\n",
		len(chains), p.ChainDeliveredSince(snap, chains[0]).Mpps())
	// Output:
	// chains: 1, throughput 3.8 Mpps
}

// ExampleMode_features demonstrates the paper's feature ablation axes.
func ExampleMode_features() {
	for _, m := range nfvnice.AllModes() {
		f := m.Features()
		fmt.Printf("%-9s cgroups=%-5v backpressure=%-5v ecn=%v\n",
			m, f.CGroupShares, f.Backpressure, f.ECN)
	}
	// Output:
	// Default   cgroups=false backpressure=false ecn=false
	// CGroup    cgroups=true  backpressure=false ecn=false
	// OnlyBKPR  cgroups=false backpressure=true  ecn=false
	// NFVnice   cgroups=true  backpressure=true  ecn=true
}
