package nfvnice

import (
	"nfvnice/internal/mgr"
	"nfvnice/internal/packet"
)

// Link bridges two platforms sharing one engine: packets exiting a flow's
// chain on host A are re-injected into host B after a propagation delay,
// preserving the ECN codepoint — the cross-host service chains of §3.3,
// where in-network ECN marking is the only congestion signal that can reach
// a remote sender. Create with ConnectHosts.
type Link struct {
	a, b  *Platform
	delay Cycles
	flow  Flow

	// Forwarded and DroppedAtB count cross-host packet fates.
	Forwarded  uint64
	DroppedAtB uint64

	// Downstream, when set, receives end-to-end delivery/drop events from
	// host B (e.g. a TCP sender's congestion feedback).
	Downstream Sink
}

// ConnectHosts routes the flow across two platforms: its chain on host A
// feeds its chain on host B over a link with the given one-way delay. Both
// platforms must share the same engine (NewPlatformOn) and have the flow
// mapped to a chain locally.
func ConnectHosts(a, b *Platform, flow Flow, delay Cycles) *Link {
	if a.Eng != b.Eng {
		panic("nfvnice: ConnectHosts requires platforms sharing an engine")
	}
	l := &Link{a: a, b: b, delay: delay, flow: flow}
	a.RegisterSink(flow.ID, (*linkSinkA)(l))
	b.RegisterSink(flow.ID, (*linkSinkB)(l))
	return l
}

// linkSinkA observes host A's chain exits and forwards across the wire.
type linkSinkA Link

// Delivered implements Sink for host A: ship the packet to host B.
func (l *linkSinkA) Delivered(now Cycles, pkt *Packet) {
	key, id, size, ecn := pkt.Flow, pkt.FlowID, pkt.Size, pkt.ECN
	link := (*Link)(l)
	link.a.Eng.After(link.delay, func() {
		if ok, _ := link.b.Mgr.Inject(key, id, size, ecn, 0); ok {
			link.Forwarded++
		} else {
			link.DroppedAtB++
			if link.Downstream != nil {
				tmp := packet.Packet{Flow: key, FlowID: id, Size: size, ECN: ecn}
				link.Downstream.Dropped(link.b.Eng.Now(), &tmp, mgr.DropEntryRing)
			}
		}
	})
}

// Dropped implements Sink for host A: local drops feed straight back.
func (l *linkSinkA) Dropped(now Cycles, pkt *Packet, at DropPoint) {
	if l.Downstream != nil {
		l.Downstream.Dropped(now, pkt, at)
	}
}

// linkSinkB observes host B's chain exits: end-to-end delivery.
type linkSinkB Link

// Delivered implements Sink for host B.
func (l *linkSinkB) Delivered(now Cycles, pkt *Packet) {
	if l.Downstream != nil {
		l.Downstream.Delivered(now, pkt)
	}
}

// Dropped implements Sink for host B.
func (l *linkSinkB) Dropped(now Cycles, pkt *Packet, at DropPoint) {
	if l.Downstream != nil {
		l.Downstream.Dropped(now, pkt, at)
	}
}
